// Shard worker processes (DESIGN.md §14): the framed wire protocol, the
// supervisor/worker handshake, and kill-and-restart containment.
//
// Four tiers:
//   1. Wire format — frame/message roundtrips, then the corruption sweep:
//      truncations, bit flips, oversized length headers and seeded garbage
//      against both the frame reader and every message decoder (clean
//      Status, never a crash or an unbounded allocation).
//   2. Worker protocol — a real worker process fed garbage or a bad
//      handshake exits with the protocol code instead of crashing.
//   3. Equivalence — the seeded workload (monitoring subscriptions plus a
//      continuous query over the remote document source) at shard_mode =
//      process with 2 and 4 workers delivers bit-for-bit the inline
//      1-shard mail, with the same MQP tree shape and document count.
//   4. Containment — SIGKILL at every batch boundary, a mid-batch wedge
//      caught by the heartbeat, and a worker dying mid-write: workers are
//      respawned from their storage partitions, no acked subscription is
//      lost, and the supervisor never dies.
//
// Wall-clock bounds scale with XYMON_TEST_TIME_SCALE (tests/time_scale.h).

#include <gtest/gtest.h>

#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "crash_sweep.h"
#include "time_scale.h"
#include "src/ipc/wire.h"
#include "src/system/monitor.h"
#include "src/system/stage_faults.h"
#include "src/webstub/crawler.h"

namespace xymon {
namespace {

using ipc::MsgType;
using ipc::ReadFrame;
using ipc::WriteFrame;
using system::ShardMode;
using system::StageFaultInjector;
using system::StageFaultKind;
using system::StageFaultPlan;
using system::StageKind;
using system::XylemeMonitor;

constexpr char kWorkerBin[] = XYMON_WORKER_BIN_PATH;

/// Fresh directory under the ctest working directory (the build tree), so
/// process-mode partitions live on the real filesystem the workers can open.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path("ipc_test_tmp_" + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

bool WaitFor(const std::function<bool()>& pred, uint32_t ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(ScaledMs(ms));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ------------------------------------------------------------ frame layer --

TEST(WireFrameTest, RoundtripsPayloadsOverAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Largest frame stays under the 64 KiB pipe buffer: the test writes and
  // reads on one thread, so the whole frame must fit without blocking.
  const std::string payloads[] = {std::string(), std::string("x"),
                                  std::string(40000, 'q'),
                                  std::string("\x00\xff\x7f binary \n", 12)};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
    std::string got;
    ASSERT_TRUE(ReadFrame(fds[0], &got).ok());
    EXPECT_EQ(got, payload);
  }
  close(fds[0]);
  close(fds[1]);
}

TEST(WireFrameTest, PeekTypeRejectsEmptyAndUnknown) {
  MsgType type;
  EXPECT_FALSE(ipc::PeekType("", &type));
  EXPECT_FALSE(ipc::PeekType(std::string(1, '\x63'), &type));  // type 99
  EXPECT_FALSE(ipc::PeekType(std::string(1, '\x00'), &type));
  ASSERT_TRUE(ipc::PeekType(ipc::PingMsg{7}.Encode(), &type));
  EXPECT_EQ(type, MsgType::kPing);
}

TEST(WireFrameTest, ReadDeadlineExpiresWithoutData) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string payload;
  Status st = ReadFrame(fds[0], &payload, /*deadline_ms=*/50);
  EXPECT_FALSE(st.ok());
  close(fds[0]);
  close(fds[1]);
}

// --------------------------------------------------------- message layer --

TEST(WireMessageTest, HelloRoundtripsWithFaultPlan) {
  ipc::HelloMsg msg;
  msg.shard_index = 3;
  msg.num_shards = 4;
  msg.use_trie_prefixes = 1;
  msg.containment = 0;
  msg.max_parse_failures = 7;
  msg.faults.push_back({2, 1, 5, 1500, "http://w0.example/doc.xml"});
  msg.faults.push_back({1, 3, 1, 0, "http://w1.example/x.xml"});

  std::string payload = msg.Encode();
  MsgType type;
  ASSERT_TRUE(ipc::PeekType(payload, &type));
  ASSERT_EQ(type, MsgType::kHello);
  ipc::HelloMsg got;
  ASSERT_TRUE(ipc::HelloMsg::Decode(
                  std::string_view(payload).substr(1), &got)
                  .ok());
  EXPECT_EQ(got.magic, ipc::kWireMagic);
  EXPECT_EQ(got.version, ipc::kWireVersion);
  EXPECT_EQ(got.shard_index, 3u);
  EXPECT_EQ(got.num_shards, 4u);
  EXPECT_EQ(got.use_trie_prefixes, 1);
  EXPECT_EQ(got.containment, 0);
  EXPECT_EQ(got.max_parse_failures, 7u);
  ASSERT_EQ(got.faults.size(), 2u);
  EXPECT_EQ(got.faults[0].stage, 2);
  EXPECT_EQ(got.faults[0].kind, 1);
  EXPECT_EQ(got.faults[0].nth, 5u);
  EXPECT_EQ(got.faults[0].stall_ms, 1500u);
  EXPECT_EQ(got.faults[0].url, "http://w0.example/doc.xml");
  EXPECT_EQ(got.faults[1].url, "http://w1.example/x.xml");
}

TEST(WireMessageTest, SlotResultRoundtripsActionsAndDeltas) {
  ipc::SlotResultMsg msg;
  msg.batch = 42;
  msg.slot = 7;
  msg.processed = 1;
  msg.alert = 1;
  msg.failed = 1;
  msg.failed_stage = "detect";
  msg.status_code = 5;
  msg.status_message = "stage threw";
  msg.actions.push_back({1, "Sub0", "Q", "<Changed/>", "ev:k"});
  msg.actions.push_back({0, "Sub1", "", "", ""});
  msg.ingest = {3, 1200};
  msg.detect = {3, 450};
  msg.match = {2, 90};
  msg.notify = {1, 30};
  msg.document_count = 19;

  std::string payload = msg.Encode();
  ipc::SlotResultMsg got;
  ASSERT_TRUE(ipc::SlotResultMsg::Decode(
                  std::string_view(payload).substr(1), &got)
                  .ok());
  EXPECT_EQ(got.batch, 42u);
  EXPECT_EQ(got.slot, 7u);
  EXPECT_EQ(got.processed, 1);
  EXPECT_EQ(got.alert, 1);
  EXPECT_EQ(got.failed, 1);
  EXPECT_EQ(got.failed_stage, "detect");
  EXPECT_EQ(got.status_code, 5);
  EXPECT_EQ(got.status_message, "stage threw");
  ASSERT_EQ(got.actions.size(), 2u);
  EXPECT_EQ(got.actions[0].subscription, "Sub0");
  EXPECT_EQ(got.actions[0].payload_xml, "<Changed/>");
  EXPECT_EQ(got.actions[0].event_key, "ev:k");
  EXPECT_EQ(got.ingest.micros, 1200u);
  EXPECT_EQ(got.notify.documents, 1u);
  EXPECT_EQ(got.document_count, 19u);
}

TEST(WireMessageTest, DomainDocsRoundtripsMetaAndBody) {
  ipc::DomainDocsMsg msg;
  msg.seq = 9;
  ipc::DomainDocsMsg::Doc doc;
  doc.meta = {12,       "http://art/m.xml", "f12.xml", 1,    "museum",
              "art.dtd", 4,                 "culture", 1000, 2000,
              777,      2};
  doc.doc_xml = "<museum><painting><title>t</title></painting></museum>";
  doc.doctype_name = "museum";
  doc.dtd_url = "art.dtd";
  msg.docs.push_back(doc);

  std::string payload = msg.Encode();
  ipc::DomainDocsMsg got;
  ASSERT_TRUE(ipc::DomainDocsMsg::Decode(
                  std::string_view(payload).substr(1), &got)
                  .ok());
  EXPECT_EQ(got.seq, 9u);
  ASSERT_EQ(got.docs.size(), 1u);
  EXPECT_EQ(got.docs[0].meta.docid, 12u);
  EXPECT_EQ(got.docs[0].meta.url, "http://art/m.xml");
  EXPECT_EQ(got.docs[0].meta.signature, 777u);
  EXPECT_EQ(got.docs[0].meta.status, 2);
  EXPECT_EQ(got.docs[0].doc_xml, doc.doc_xml);
}

TEST(WireMessageTest, SmallMessagesRoundtrip) {
  {
    ipc::CmdAckMsg msg{11, 3, "nope"};
    ipc::CmdAckMsg got;
    std::string p = msg.Encode();
    ASSERT_TRUE(
        ipc::CmdAckMsg::Decode(std::string_view(p).substr(1), &got).ok());
    EXPECT_EQ(got.seq, 11u);
    EXPECT_EQ(got.status_code, 3);
    EXPECT_EQ(got.status_message, "nope");
  }
  {
    ipc::SlotMsg msg{5, 2, 1, 40, 1234, "http://w0.example/d.xml", "<p/>"};
    ipc::SlotMsg got;
    std::string p = msg.Encode();
    ASSERT_TRUE(
        ipc::SlotMsg::Decode(std::string_view(p).substr(1), &got).ok());
    EXPECT_EQ(got.batch, 5u);
    EXPECT_EQ(got.slot, 2u);
    EXPECT_EQ(got.deletion, 1);
    EXPECT_EQ(got.docid_hint, 40u);
    EXPECT_EQ(got.now, 1234);
    EXPECT_EQ(got.url, "http://w0.example/d.xml");
    EXPECT_EQ(got.body, "<p/>");
  }
  {
    ipc::PongMsg msg{99, 17};
    ipc::PongMsg got;
    std::string p = msg.Encode();
    ASSERT_TRUE(
        ipc::PongMsg::Decode(std::string_view(p).substr(1), &got).ok());
    EXPECT_EQ(got.token, 99u);
    EXPECT_EQ(got.document_count, 17u);
  }
}

// -------------------------------------------------------- corruption sweep --

/// Writes `frame` raw, closes the write end (so a reader waiting for bytes a
/// corrupt length promised sees EOF instead of hanging), reads one frame.
Status ReadRawFrame(const std::string& frame) {
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  ssize_t n = write(fds[1], frame.data(), frame.size());
  EXPECT_EQ(n, static_cast<ssize_t>(frame.size()));
  close(fds[1]);
  std::string payload;
  Status st = ReadFrame(fds[0], &payload);
  close(fds[0]);
  return st;
}

/// A valid encoded frame, captured through a pipe.
std::string CaptureFrame(const std::string& payload) {
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  EXPECT_TRUE(WriteFrame(fds[1], payload).ok());
  close(fds[1]);
  std::string frame;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) frame.append(buf, n);
  close(fds[0]);
  return frame;
}

TEST(WireCorruptionTest, EveryBitFlipIsRejected) {
  const std::string frame = CaptureFrame(ipc::PingMsg{0x1234}.Encode());
  ASSERT_EQ(frame.size(), ipc::kFrameHeaderLen + 9);
  ASSERT_TRUE(ReadRawFrame(frame).ok());  // the unflipped control

  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string flipped = frame;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    Status st = ReadRawFrame(flipped);
    EXPECT_FALSE(st.ok()) << "bit " << bit << " accepted";
  }
}

TEST(WireCorruptionTest, TruncationsAreRejectedAtEveryLength) {
  const std::string frame =
      CaptureFrame(ipc::SubscribeMsg{1, 99, 1, "subscription S\n", "a@x"}
                       .Encode());
  for (size_t len = 0; len < frame.size(); ++len) {
    Status st = ReadRawFrame(frame.substr(0, len));
    EXPECT_FALSE(st.ok()) << "truncation at " << len << " accepted";
  }
}

TEST(WireCorruptionTest, OversizedLengthIsRejectedWithoutAllocating) {
  // Header promising just past the cap, and the degenerate all-ones header:
  // both must fail on the length check alone — no payload follows.
  for (uint32_t len : {ipc::kMaxFrameLen + 1, 0xFFFFFFFFu}) {
    std::string frame(ipc::kFrameHeaderLen, '\0');
    frame[0] = static_cast<char>(len);
    frame[1] = static_cast<char>(len >> 8);
    frame[2] = static_cast<char>(len >> 16);
    frame[3] = static_cast<char>(len >> 24);
    Status st = ReadRawFrame(frame);
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
}

TEST(WireCorruptionTest, SeededGarbageNeverCrashesTheFrameReader) {
  std::mt19937 rng(0x58594D57);  // deterministic: failures reproduce
  for (int i = 0; i < 300; ++i) {
    size_t len = rng() % 64;
    std::string frame(len, '\0');
    for (char& c : frame) c = static_cast<char>(rng());
    Status st = ReadRawFrame(frame);
    EXPECT_FALSE(st.ok());
  }
}

TEST(WireCorruptionTest, DecodersRejectTruncationAndSurviveBitFlips) {
  // One representative payload per message type (type byte first).
  const std::vector<std::string> payloads = {
      ipc::HelloMsg{ipc::kWireMagic, ipc::kWireVersion, 1, 4, 1, 1, 3,
                    {{2, 1, 5, 1500, "http://u"}}}
          .Encode(),
      ipc::HelloAckMsg{1, 1234}.Encode(),
      ipc::OpenPartitionMsg{1, "wh.part0", 1, 1 << 20}.Encode(),
      ipc::SubscribeMsg{2, 99, 1, "subscription S\n", "a@x"}.Encode(),
      ipc::UnsubscribeMsg{3, 99, "S"}.Encode(),
      ipc::DomainRuleMsg{4, "culture", "museum", "museum", "art"}.Encode(),
      ipc::CmdAckMsg{5, 0, ""}.Encode(),
      ipc::SlotMsg{6, 1, 0, 7, 99, "http://u", "<p/>"}.Encode(),
      [] {
        ipc::SlotResultMsg m;
        m.batch = 7;
        m.actions.push_back({1, "S", "Q", "<x/>", "k"});
        return m.Encode();
      }(),
      ipc::CheckpointMsg{8}.Encode(),
      ipc::CheckpointDoneMsg{8, 0, "", 12}.Encode(),
      ipc::PingMsg{9}.Encode(),
      ipc::PongMsg{9, 12}.Encode(),
      ipc::QueryDomainMsg{10, "culture"}.Encode(),
      [] {
        ipc::DomainDocsMsg m;
        m.seq = 10;
        m.docs.push_back({{1, "http://u", "f", 1, "d", "u", 1, "dom", 1, 2,
                           3, 1},
                          "<d/>", "d", "u"});
        return m.Encode();
      }(),
      ipc::DtdIdReqMsg{"art.dtd"}.Encode(),
      ipc::DtdIdRespMsg{"art.dtd", 4}.Encode(),
      ipc::ShutdownMsg{}.Encode(),
  };

  // Decode the payload body with the decoder its type byte names. Returns
  // the decode status; the point is that it returns at all.
  auto decode = [](const std::string& payload) {
    MsgType type;
    if (!ipc::PeekType(payload, &type)) {
      return Status::Corruption("unknown type");
    }
    std::string_view body = std::string_view(payload).substr(1);
    switch (type) {
      case MsgType::kHello: {
        ipc::HelloMsg m;
        return ipc::HelloMsg::Decode(body, &m);
      }
      case MsgType::kHelloAck: {
        ipc::HelloAckMsg m;
        return ipc::HelloAckMsg::Decode(body, &m);
      }
      case MsgType::kOpenPartition: {
        ipc::OpenPartitionMsg m;
        return ipc::OpenPartitionMsg::Decode(body, &m);
      }
      case MsgType::kSubscribe: {
        ipc::SubscribeMsg m;
        return ipc::SubscribeMsg::Decode(body, &m);
      }
      case MsgType::kUnsubscribe: {
        ipc::UnsubscribeMsg m;
        return ipc::UnsubscribeMsg::Decode(body, &m);
      }
      case MsgType::kDomainRule: {
        ipc::DomainRuleMsg m;
        return ipc::DomainRuleMsg::Decode(body, &m);
      }
      case MsgType::kCmdAck: {
        ipc::CmdAckMsg m;
        return ipc::CmdAckMsg::Decode(body, &m);
      }
      case MsgType::kSlot: {
        ipc::SlotMsg m;
        return ipc::SlotMsg::Decode(body, &m);
      }
      case MsgType::kSlotResult: {
        ipc::SlotResultMsg m;
        return ipc::SlotResultMsg::Decode(body, &m);
      }
      case MsgType::kCheckpoint: {
        ipc::CheckpointMsg m;
        return ipc::CheckpointMsg::Decode(body, &m);
      }
      case MsgType::kCheckpointDone: {
        ipc::CheckpointDoneMsg m;
        return ipc::CheckpointDoneMsg::Decode(body, &m);
      }
      case MsgType::kPing: {
        ipc::PingMsg m;
        return ipc::PingMsg::Decode(body, &m);
      }
      case MsgType::kPong: {
        ipc::PongMsg m;
        return ipc::PongMsg::Decode(body, &m);
      }
      case MsgType::kQueryDomain: {
        ipc::QueryDomainMsg m;
        return ipc::QueryDomainMsg::Decode(body, &m);
      }
      case MsgType::kDomainDocs: {
        ipc::DomainDocsMsg m;
        return ipc::DomainDocsMsg::Decode(body, &m);
      }
      case MsgType::kDtdIdReq: {
        ipc::DtdIdReqMsg m;
        return ipc::DtdIdReqMsg::Decode(body, &m);
      }
      case MsgType::kDtdIdResp: {
        ipc::DtdIdRespMsg m;
        return ipc::DtdIdRespMsg::Decode(body, &m);
      }
      case MsgType::kShutdown: {
        ipc::ShutdownMsg m;
        return ipc::ShutdownMsg::Decode(body, &m);
      }
    }
    return Status::Corruption("unhandled type");
  };

  for (const std::string& payload : payloads) {
    SCOPED_TRACE("type " + std::to_string(payload.empty() ? -1 : payload[0]));
    ASSERT_TRUE(decode(payload).ok());
    // Every proper prefix is missing at least one field (or fails the
    // trailing-bytes check): clean Corruption, never a crash.
    for (size_t len = 0; len < payload.size(); ++len) {
      Status st = decode(payload.substr(0, len));
      EXPECT_FALSE(st.ok()) << "prefix " << len << " accepted";
    }
    // Bit flips may still decode (a flipped string byte is just a different
    // string) — the requirement is bounded allocation and no crash.
    for (size_t bit = 0; bit < payload.size() * 8; ++bit) {
      std::string flipped = payload;
      flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      (void)decode(flipped);
    }
  }
}

// ---------------------------------------------------------- worker process --

/// Forks a worker wired to fd 3, the supervisor contract. Returns the
/// supervisor's end of the socketpair.
pid_t SpawnRawWorker(int* fd) {
  int sv[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pid_t pid = fork();
  if (pid == 0) {
    dup2(sv[1], 3);
    close(sv[0]);
    close(sv[1]);
    char fd_arg[] = "3";
    char* const argv[] = {const_cast<char*>(kWorkerBin), fd_arg, nullptr};
    execv(kWorkerBin, argv);
    _exit(127);
  }
  close(sv[1]);
  *fd = sv[0];
  return pid;
}

/// Bounded reap: SIGKILL + test failure instead of a hung waitpid.
int ReapWorker(pid_t pid) {
  int wstatus = 0;
  if (!WaitFor(
          [&] { return waitpid(pid, &wstatus, WNOHANG) == pid; },
          5000)) {
    kill(pid, SIGKILL);
    waitpid(pid, &wstatus, 0);
    ADD_FAILURE() << "worker did not exit in time";
  }
  return wstatus;
}

TEST(WorkerProtocolTest, GarbageFrameExitsWithProtocolCode) {
  int fd;
  pid_t pid = SpawnRawWorker(&fd);
  ASSERT_GT(pid, 0);
  // A syntactically valid frame whose CRC lies about its payload.
  std::string frame = CaptureFrame(ipc::PingMsg{1}.Encode());
  frame.back() ^= 0x40;
  ASSERT_EQ(write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  int wstatus = ReapWorker(pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 3);
  close(fd);
}

TEST(WorkerProtocolTest, VersionMismatchIsRefusedBeforeAnyState) {
  int fd;
  pid_t pid = SpawnRawWorker(&fd);
  ASSERT_GT(pid, 0);
  ipc::HelloMsg hello;
  hello.version = ipc::kWireVersion + 1;
  ASSERT_TRUE(WriteFrame(fd, hello.Encode()).ok());
  int wstatus = ReapWorker(pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 3);
  close(fd);
}

TEST(WorkerProtocolTest, HandshakeAnswersVersionAndPid) {
  int fd;
  pid_t pid = SpawnRawWorker(&fd);
  ASSERT_GT(pid, 0);
  Status hello_st = WriteFrame(fd, ipc::HelloMsg{}.Encode());
  ASSERT_TRUE(hello_st.ok()) << hello_st.ToString();
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &payload, ScaledMs(5000)).ok());
  MsgType type;
  ASSERT_TRUE(ipc::PeekType(payload, &type));
  ASSERT_EQ(type, MsgType::kHelloAck);
  ipc::HelloAckMsg ack;
  ASSERT_TRUE(ipc::HelloAckMsg::Decode(
                  std::string_view(payload).substr(1), &ack)
                  .ok());
  EXPECT_EQ(ack.version, ipc::kWireVersion);
  EXPECT_EQ(ack.pid, static_cast<uint64_t>(pid));
  ASSERT_TRUE(WriteFrame(fd, ipc::ShutdownMsg{}.Encode()).ok());
  int wstatus = ReapWorker(pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  close(fd);
}

// -------------------------------------------------------------- sigpipe ----

TEST(SigpipeTest, WritingToADeadPeerIsAStatusNotASignal) {
  ipc::InstallSigpipeIgnore();
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  close(sv[0]);  // the "worker" dies
  // Big enough to defeat any kernel buffering of the first write.
  std::string payload(1 << 20, 'x');
  Status st = Status::OK();
  for (int i = 0; i < 4 && st.ok(); ++i) {
    st = WriteFrame(sv[1], payload);
  }
  EXPECT_FALSE(st.ok());  // and the process is alive to notice
  close(sv[1]);
}

// ----------------------------------------------------- monitor equivalence --

constexpr char kContinuousArt[] = R"(
subscription Art
continuous Paintings
select p/title from culture//painting p
when daily
report when immediate
)";

std::string MuseumUrl(int j) {
  return "http://art/m" + std::to_string(j) + ".xml";
}

std::string MuseumBody(int j, int round) {
  return "<museum><painting><title>t" + std::to_string(j) + "-" +
         std::to_string(round) + "</title></painting></museum>";
}

struct IpcRunResult {
  std::vector<std::pair<std::string, std::string>> mail;  // (to, body)
  uint64_t documents = 0;
  uint64_t notifications = 0;
  uint64_t respawns = 0;
  std::optional<testing::TreeShape> shape;
  bool probe_notified = false;
};

XylemeMonitor::Options IpcOptions(ShardMode mode, size_t shards,
                                  const std::string& dir) {
  XylemeMonitor::Options options = testing::SweepOptions(dir, nullptr);
  options.num_shards = shards;
  options.shard_mode = mode;
  options.worker_binary = kWorkerBin;
  return options;
}

/// The seeded workload: 4 monitoring subscriptions with shared URL
/// prefixes, one continuous query over the `culture` domain (in process
/// mode this reads the partitions back over the kQueryDomain RPC), three
/// versioned rounds with a checkpoint in the middle, then a liveness probe.
/// `between_rounds` runs before each round — the kill sweep's hook.
IpcRunResult RunSeededWorkload(
    ShardMode mode, size_t shards, const std::string& dir,
    const std::function<void(XylemeMonitor&, int round)>& between_rounds =
        {}) {
  IpcRunResult out;
  SimClock clock(1000);
  auto monitor = XylemeMonitor::Open(&clock, IpcOptions(mode, shards, dir));
  EXPECT_TRUE(monitor.ok()) << monitor.status().ToString();
  if (!monitor.ok()) return out;

  (*monitor)->AddDomainRule({"culture", "", "museum", ""});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE((*monitor)
                    ->Subscribe(testing::SweepSubText(i),
                                "u" + std::to_string(i) + "@x")
                    .ok());
  }
  EXPECT_TRUE((*monitor)->Subscribe(kContinuousArt, "curator@x").ok());

  for (int round = 1; round <= 3; ++round) {
    if (between_rounds) between_rounds(**monitor, round);
    std::vector<webstub::FetchedDoc> batch;
    for (int j = 0; j < 12; ++j) {
      batch.push_back({testing::SweepUrl(j), testing::SweepBody(j, round)});
    }
    for (int j = 0; j < 2; ++j) {
      batch.push_back({MuseumUrl(j), MuseumBody(j, round)});
    }
    (*monitor)->ProcessFetchBatch(batch);
    clock.Advance(kDay);
    (*monitor)->Tick();
    if (round == 2) {
      EXPECT_TRUE((*monitor)->CheckpointStorage().ok());
    }
  }

  for (const reporter::Email& email : (*monitor)->outbox().sent()) {
    out.mail.emplace_back(email.to, email.body);
  }
  out.documents = (*monitor)->pipeline().total_document_count();
  out.notifications = (*monitor)->stats().notifications;
  out.respawns = (*monitor)->pipeline_stats().worker_respawns;
  out.shape = testing::ShapeOf(**monitor);

  // No acked subscription lost: a modified page must still notify.
  uint64_t before = (*monitor)->stats().notifications;
  (*monitor)->ProcessFetch("http://w0.example/probe.xml", "<p>v1</p>");
  (*monitor)->ProcessFetch("http://w0.example/probe.xml", "<p>v2</p>");
  out.probe_notified = (*monitor)->stats().notifications > before;
  return out;
}

TEST(ProcessModeTest, TwoAndFourWorkersMatchInlineBitForBit) {
  TempDir inline_dir("equiv_inline");
  IpcRunResult inline_run =
      RunSeededWorkload(ShardMode::kThread, 1, inline_dir.path);
  ASSERT_FALSE(inline_run.mail.empty());
  ASSERT_TRUE(inline_run.probe_notified);
  ASSERT_TRUE(inline_run.shape.has_value());

  for (size_t workers : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    TempDir dir("equiv_p" + std::to_string(workers));
    IpcRunResult run =
        RunSeededWorkload(ShardMode::kProcess, workers, dir.path);
    EXPECT_EQ(run.mail, inline_run.mail);
    EXPECT_EQ(run.documents, inline_run.documents);
    EXPECT_EQ(run.notifications, inline_run.notifications);
    EXPECT_EQ(run.respawns, 0u);
    EXPECT_TRUE(run.probe_notified);
    ASSERT_TRUE(run.shape.has_value());
    EXPECT_TRUE(*run.shape == *inline_run.shape)
        << "MQP tree shape diverged from the inline build";
  }
}

TEST(ProcessModeTest, StatusReportListsWorkersOnlyInProcessMode) {
  TempDir dir("report");
  SimClock clock(1000);
  auto monitor =
      XylemeMonitor::Open(&clock, IpcOptions(ShardMode::kProcess, 2, dir.path));
  ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
  (*monitor)->ProcessFetch(testing::SweepUrl(0), testing::SweepBody(0, 1));

  std::string report = (*monitor)->StatusReport();
  EXPECT_NE(report.find("<Worker pid=\""), std::string::npos);
  EXPECT_NE(report.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(report.find("shard=\"1\""), std::string::npos);
  EXPECT_NE(report.find("restarts=\"0\""), std::string::npos);
  EXPECT_NE(report.find("last_heartbeat_ms="), std::string::npos);
  EXPECT_NE(report.find("worker_crashes=\"0\""), std::string::npos);
  EXPECT_NE(report.find("worker_respawns=\"0\""), std::string::npos);

  system::PipelineStats ps = (*monitor)->pipeline_stats();
  ASSERT_EQ(ps.workers.size(), 2u);
  for (size_t i = 0; i < ps.workers.size(); ++i) {
    EXPECT_TRUE(ps.workers[i].alive);
    EXPECT_EQ(ps.workers[i].shard, i);
    EXPECT_GT(ps.workers[i].pid, 0);
    EXPECT_EQ(ps.workers[i].pid, (*monitor)->pipeline().worker_pid(i));
  }

  // Thread mode keeps the historical report byte-exactly: no Worker rows.
  SimClock clock2(1000);
  XylemeMonitor thread_monitor(&clock2, {});
  EXPECT_EQ(thread_monitor.StatusReport().find("<Worker"),
            std::string::npos);
}

TEST(ProcessModeTest, MissingWorkerBinaryFailsOpen) {
  TempDir dir("nobin");
  SimClock clock(1000);
  auto options = IpcOptions(ShardMode::kProcess, 2, dir.path);
  options.worker_binary = "/nonexistent/xymon_shard_worker";
  auto monitor = XylemeMonitor::Open(&clock, options);
  EXPECT_FALSE(monitor.ok());
}

// ------------------------------------------------------------- kill sweep --

TEST(KillSweepTest, SigkillAtEveryBatchBoundaryRespawnsFromStorage) {
  const size_t kWorkers = 2;
  TempDir control_dir("kill_control");
  IpcRunResult control =
      RunSeededWorkload(ShardMode::kProcess, kWorkers, control_dir.path);
  ASSERT_FALSE(control.mail.empty());

  // Before every round after the first, SIGKILL one worker (rotating) and
  // wait for the supervisor to notice. The monitor restarts it from its
  // partition before scattering the round, so the sweep must deliver
  // bit-for-bit the unkilled run's mail.
  int kills = 0;
  auto killer = [&](XylemeMonitor& monitor, int round) {
    if (round == 1) return;
    size_t victim = static_cast<size_t>(round) % kWorkers;
    int pid = monitor.pipeline().worker_pid(victim);
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    ++kills;
    ASSERT_TRUE(WaitFor(
        [&] {
          monitor.pipeline().PollWorkers();
          system::PipelineStats ps = monitor.pipeline_stats();
          return !ps.workers[victim].alive;
        },
        5000))
        << "supervisor never noticed the SIGKILL";
  };

  TempDir dir("kill_sweep");
  IpcRunResult run =
      RunSeededWorkload(ShardMode::kProcess, kWorkers, dir.path, killer);
  EXPECT_EQ(kills, 2);
  EXPECT_EQ(run.mail, control.mail);
  EXPECT_EQ(run.documents, control.documents);
  EXPECT_EQ(run.respawns, static_cast<uint64_t>(kills));
  EXPECT_TRUE(run.probe_notified);
}

TEST(KillSweepTest, MidBatchWedgeIsKilledByHeartbeatAndRespawned) {
  const std::string faulty = testing::SweepUrl(0);
  // Detect call #2 stalls far past the heartbeat timeout: the worker goes
  // silent mid-slot, the heartbeat SIGKILLs it, the barrier fails the
  // outstanding slots, and the post-batch restart rebuilds the shard from
  // its partition.
  StageFaultInjector injector(StageFaultPlan{
      {{StageKind::kDetect, faulty, 2, StageFaultKind::kStall,
        ScaledMs(3000)}}});
  TempDir dir("wedge");
  SimClock clock(1000);
  auto options = IpcOptions(ShardMode::kProcess, 2, dir.path);
  options.stage_faults = &injector;
  options.worker_heartbeat_interval_ms = ScaledMs(50);
  options.worker_heartbeat_timeout_ms = ScaledMs(500);
  auto monitor = XylemeMonitor::Open(&clock, options);
  ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
  ASSERT_TRUE(
      (*monitor)->Subscribe(testing::SweepSubText(0), "u0@x").ok());

  // Version 1 is `new` — detect call #1 passes clean everywhere.
  (*monitor)->ProcessFetchBatch({{faulty, testing::SweepBody(0, 1)},
                                 {testing::SweepUrl(1),
                                  testing::SweepBody(1, 1)}});
  ASSERT_EQ((*monitor)->stats().failed_documents, 0u);

  // Version 2 wedges the worker at detect. The batch must complete (the
  // heartbeat bounds the barrier), fail the wedged slot, and respawn.
  (*monitor)->ProcessFetchBatch({{faulty, testing::SweepBody(0, 2)},
                                 {testing::SweepUrl(1),
                                  testing::SweepBody(1, 2)}});
  system::PipelineStats ps = (*monitor)->pipeline_stats();
  EXPECT_GE((*monitor)->stats().failed_documents, 1u);
  EXPECT_GE(ps.worker_crashes, 1u);
  EXPECT_GE(ps.worker_respawns, 1u);
  EXPECT_TRUE((*monitor)->restart_status().ok())
      << (*monitor)->restart_status().ToString();
  for (const system::WorkerStatus& w : ps.workers) {
    EXPECT_TRUE(w.alive);
  }

  // The respawned worker recovered its partition (version 1 of the faulty
  // page was ingested before the wedge): the next version still diffs and
  // notifies, and so does an untouched URL.
  uint64_t before = (*monitor)->stats().notifications;
  (*monitor)->ProcessFetch(faulty, testing::SweepBody(0, 3));
  (*monitor)->ProcessFetch("http://w0.example/probe.xml", "<p>v1</p>");
  (*monitor)->ProcessFetch("http://w0.example/probe.xml", "<p>v2</p>");
  EXPECT_GT((*monitor)->stats().notifications, before);
}

TEST(KillSweepTest, WorkerDeathMidBatchDoesNotKillTheSupervisor) {
  // No spin-wait here: the kill races the next scatter on purpose, so slot
  // writes can land on the dead socket (EPIPE, not SIGPIPE) or on a freshly
  // respawned worker — either way the supervisor survives and heals.
  TempDir dir("sigpipe_mon");
  SimClock clock(1000);
  auto monitor =
      XylemeMonitor::Open(&clock, IpcOptions(ShardMode::kProcess, 2, dir.path));
  ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
  ASSERT_TRUE(
      (*monitor)->Subscribe(testing::SweepSubText(0), "u0@x").ok());

  std::vector<webstub::FetchedDoc> batch;
  for (int j = 0; j < 12; ++j) {
    batch.push_back({testing::SweepUrl(j), testing::SweepBody(j, 1)});
  }
  (*monitor)->ProcessFetchBatch(batch);

  int pid = (*monitor)->pipeline().worker_pid(0);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  for (int j = 0; j < 12; ++j) {
    batch[j].body = testing::SweepBody(j, 2);
  }
  (*monitor)->ProcessFetchBatch(batch);  // must not die

  // Heals: the next boundary restarts the worker and the flow notifies.
  (*monitor)->ProcessFetchBatch(batch);
  ASSERT_TRUE(WaitFor(
      [&] {
        (*monitor)->pipeline().PollWorkers();
        system::PipelineStats ps = (*monitor)->pipeline_stats();
        return ps.workers[0].alive && ps.workers[1].alive;
      },
      5000));
  uint64_t before = (*monitor)->stats().notifications;
  (*monitor)->ProcessFetch("http://w0.example/probe.xml", "<p>v1</p>");
  (*monitor)->ProcessFetch("http://w0.example/probe.xml", "<p>v2</p>");
  EXPECT_GT((*monitor)->stats().notifications, before);
}

}  // namespace
}  // namespace xymon
