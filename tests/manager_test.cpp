#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "src/manager/subscription_manager.h"

namespace xymon::manager {
namespace {

constexpr char kSimpleSub[] = R"(
subscription Simple
monitoring
select default
where URL extends "http://site.org/" and new Product
report when immediate
)";

constexpr char kOtherSub[] = R"(
subscription Other
monitoring
select default
where URL extends "http://site.org/" and updated Product
report when immediate
)";

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : pipeline_(&url_alerter_, &xml_alerter_, &html_alerter_),
        query_engine_(&warehouse_),
        reporter_(&outbox_, &query_engine_),
        manager_(SubscriptionManager::Components{
            &mqp_, &url_alerter_, &xml_alerter_, &html_alerter_, &pipeline_,
            &trigger_engine_, &reporter_, &query_engine_, &clock_}) {}

  SimClock clock_;
  warehouse::Warehouse warehouse_;
  mqp::MonitoringQueryProcessor mqp_;
  alerters::UrlAlerter url_alerter_;
  alerters::XmlAlerter xml_alerter_;
  alerters::HtmlAlerter html_alerter_;
  alerters::AlertPipeline pipeline_;
  trigger::TriggerEngine trigger_engine_;
  reporter::Outbox outbox_;
  query::QueryEngine query_engine_;
  reporter::Reporter reporter_;
  SubscriptionManager manager_;
};

TEST_F(ManagerTest, SubscribeRegistersEverything) {
  auto name = manager_.Subscribe(kSimpleSub, "u@x");
  ASSERT_TRUE(name.ok()) << name.status().ToString();
  EXPECT_EQ(*name, "Simple");
  EXPECT_EQ(manager_.subscription_count(), 1u);
  EXPECT_EQ(manager_.atomic_event_count(), 2u);
  EXPECT_EQ(url_alerter_.condition_count(), 1u);
  EXPECT_EQ(xml_alerter_.condition_count(), 1u);
  EXPECT_EQ(mqp_.matcher().size(), 1u);
}

TEST_F(ManagerTest, ConditionsSharedAcrossSubscriptions) {
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "a@x").ok());
  ASSERT_TRUE(manager_.Subscribe(kOtherSub, "b@x").ok());
  // "URL extends http://site.org/" is shared: 2 + 2 conditions but only 3
  // distinct atomic events.
  EXPECT_EQ(manager_.atomic_event_count(), 3u);
  EXPECT_EQ(url_alerter_.condition_count(), 1u);
  EXPECT_EQ(mqp_.matcher().size(), 2u);
}

TEST_F(ManagerTest, UnsubscribeReleasesSharedConditionsLazily) {
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "a@x").ok());
  ASSERT_TRUE(manager_.Subscribe(kOtherSub, "b@x").ok());
  ASSERT_TRUE(manager_.Unsubscribe("Simple").ok());
  // The shared URL condition survives (Other still needs it).
  EXPECT_EQ(manager_.atomic_event_count(), 2u);
  EXPECT_EQ(url_alerter_.condition_count(), 1u);
  ASSERT_TRUE(manager_.Unsubscribe("Other").ok());
  EXPECT_EQ(manager_.atomic_event_count(), 0u);
  EXPECT_EQ(url_alerter_.condition_count(), 0u);
  EXPECT_EQ(mqp_.matcher().size(), 0u);
  EXPECT_TRUE(manager_.Unsubscribe("Other").IsNotFound());
}

TEST_F(ManagerTest, DuplicateNameRejected) {
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "a@x").ok());
  EXPECT_TRUE(manager_.Subscribe(kSimpleSub, "b@x").status().IsAlreadyExists());
}

TEST_F(ManagerTest, InvalidSubscriptionRejectedAtomically) {
  // Weak-only where clause: rejected by the validator; nothing registered.
  auto r = manager_.Subscribe(R"(
subscription Bad
monitoring
select default
where modified self
report when immediate
)",
                              "u@x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(manager_.subscription_count(), 0u);
  EXPECT_EQ(manager_.atomic_event_count(), 0u);
  EXPECT_EQ(url_alerter_.condition_count(), 0u);
}

TEST_F(ManagerTest, BrokenContinuousQueryRolledBack) {
  auto r = manager_.Subscribe(R"(
subscription Bad
monitoring
select default
where URL extends "http://site.org/"
continuous Q
select ~~~nonsense~~~
when daily
report when immediate
)",
                              "u@x");
  EXPECT_FALSE(r.ok());
  // The monitoring query's registrations must have been rolled back.
  EXPECT_EQ(manager_.atomic_event_count(), 0u);
  EXPECT_EQ(mqp_.matcher().size(), 0u);
  EXPECT_EQ(trigger_engine_.trigger_count(), 0u);
}

TEST_F(ManagerTest, FindBindingMapsComplexEvents) {
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "u@x").ok());
  const QueryBinding* binding = manager_.FindBinding(1);
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->subscription, "Simple");
  EXPECT_EQ(binding->query_name, "m1");
  EXPECT_EQ(manager_.FindBinding(999), nullptr);
}

TEST_F(ManagerTest, VirtualRequiresExistingTarget) {
  auto bad = manager_.Subscribe("subscription V\nvirtual Nope.Q\n", "v@x");
  EXPECT_TRUE(bad.status().IsNotFound());
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "u@x").ok());
  auto good = manager_.Subscribe("subscription V\nvirtual Simple.m1\n", "v@x");
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST_F(ManagerTest, RefreshHintsExposed) {
  ASSERT_TRUE(manager_
                  .Subscribe(R"(
subscription R
monitoring
select default
where URL extends "http://site.org/"
refresh "http://site.org/hot.xml" daily
report when immediate
)",
                             "u@x")
                  .ok());
  ASSERT_EQ(manager_.refresh_hints().size(), 1u);
  EXPECT_EQ(manager_.refresh_hints().at("http://site.org/hot.xml"), kDay);
}

TEST_F(ManagerTest, ContinuousQueryWiredToTriggerEngine) {
  ASSERT_TRUE(manager_
                  .Subscribe(R"(
subscription C
continuous Counter
select m from any/museum m
when daily
report when immediate
)",
                             "u@x")
                  .ok());
  EXPECT_EQ(trigger_engine_.trigger_count(), 1u);
  clock_.Advance(kDay);
  trigger_engine_.Tick(clock_.Now());
  // Empty warehouse → empty result → still a notification (non-delta).
  EXPECT_EQ(reporter_.reports_generated(), 1u);
}


TEST_F(ManagerTest, ModifySwapsDefinitionAtomically) {
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "u@x").ok());
  ASSERT_EQ(mqp_.matcher().size(), 1u);

  // Valid modification: same name, different conditions.
  ASSERT_TRUE(manager_
                  .Modify("Simple", R"(
subscription Simple
monitoring
select default
where URL extends "http://elsewhere.org/" and deleted Product
report when immediate
)")
                  .ok());
  EXPECT_EQ(manager_.subscription_count(), 1u);
  EXPECT_EQ(mqp_.matcher().size(), 1u);
  EXPECT_EQ(manager_.atomic_event_count(), 2u);

  // Renaming through Modify is rejected.
  EXPECT_TRUE(manager_.Modify("Simple", kOtherSub).IsInvalidArgument());
  // Unknown subscription.
  EXPECT_TRUE(manager_.Modify("Ghost", kSimpleSub).IsNotFound());
  // Invalid replacement: the old definition survives.
  EXPECT_FALSE(manager_
                   .Modify("Simple", R"(
subscription Simple
monitoring
select default
where modified self
report when immediate
)")
                   .ok());
  EXPECT_EQ(manager_.subscription_count(), 1u);
  EXPECT_EQ(mqp_.matcher().size(), 1u);
}


TEST_F(ManagerTest, AddRecipientDeliversToAll) {
  ASSERT_TRUE(manager_.Subscribe(kSimpleSub, "first@x").ok());
  ASSERT_TRUE(manager_.AddRecipient("Simple", "second@x").ok());
  EXPECT_TRUE(manager_.AddRecipient("Simple", "second@x").IsAlreadyExists());
  EXPECT_TRUE(manager_.AddRecipient("Ghost", "x@x").IsNotFound());

  // Drive one notification through the reporter directly.
  reporter_.AddNotification(
      reporter::Notification{"Simple", "m1", "<n/>", 1});
  ASSERT_EQ(outbox_.sent_count(), 2u);
  std::set<std::string> to;
  for (const auto& mail : outbox_.sent()) to.insert(mail.to);
  EXPECT_EQ(to, (std::set<std::string>{"first@x", "second@x"}));
}


TEST_F(ManagerTest, SubscribeAsHonorsUserPrivileges) {
  UserRegistry users;
  ASSERT_TRUE(users.AddUser({"alice", "alice@x", /*privileged=*/false}).ok());
  ASSERT_TRUE(users.AddUser({"root", "root@x", /*privileged=*/true}).ok());
  EXPECT_TRUE(users.AddUser({"alice", "dup@x", false}).IsAlreadyExists());
  EXPECT_TRUE(users.AddUser({"", "", false}).IsInvalidArgument());

  sublang::ValidatorOptions opts;
  opts.max_cost = 50;  // Hourly continuous queries cost far more.
  SubscriptionManager manager(
      SubscriptionManager::Components{&mqp_, &url_alerter_, &xml_alerter_,
                                      &html_alerter_, &pipeline_,
                                      &trigger_engine_, &reporter_,
                                      &query_engine_, &clock_},
      opts);
  manager.set_user_registry(&users);

  constexpr char kExpensive[] = R"(
subscription Expensive
continuous Q
select m from any/museum m
when hourly
report when immediate
)";
  // Unknown user / unprivileged user / privileged user.
  EXPECT_TRUE(manager.SubscribeAs("ghost", kExpensive).status().IsNotFound());
  EXPECT_TRUE(manager.SubscribeAs("alice", kExpensive)
                  .status()
                  .IsResourceExhausted());
  auto ok = manager.SubscribeAs("root", kExpensive);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  // Cheap subscriptions pass for everyone.
  auto cheap = manager.SubscribeAs("alice", kSimpleSub);
  EXPECT_TRUE(cheap.ok()) << cheap.status().ToString();
}

class ManagerPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("xymon_mgr_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

using ManagerPersistenceTest2 = ManagerPersistenceTest;

TEST_F(ManagerPersistenceTest, SubscriptionsSurviveRestart) {
  std::string path = dir_ / "subs.log";

  // "Process 1": subscribe and drop everything.
  {
    SimClock clock;
    warehouse::Warehouse wh;
    mqp::MonitoringQueryProcessor mqp;
    alerters::UrlAlerter url;
    alerters::XmlAlerter xml;
    alerters::HtmlAlerter html;
    alerters::AlertPipeline pipeline(&url, &xml, &html);
    trigger::TriggerEngine te;
    reporter::Outbox outbox;
    query::QueryEngine qe(&wh);
    reporter::Reporter rep(&outbox, &qe);
    SubscriptionManager mgr(SubscriptionManager::Components{
        &mqp, &url, &xml, &html, &pipeline, &te, &rep, &qe, &clock});
    ASSERT_TRUE(mgr.AttachStorage(path).ok());
    ASSERT_TRUE(mgr.Subscribe(kSimpleSub, "a@x").ok());
    ASSERT_TRUE(mgr.Subscribe(kOtherSub, "b@x").ok());
    ASSERT_TRUE(mgr.AddRecipient("Simple", "extra@x").ok());
    ASSERT_TRUE(mgr.Unsubscribe("Other").ok());
  }

  // "Process 2": recover.
  SimClock clock;
  warehouse::Warehouse wh;
  mqp::MonitoringQueryProcessor mqp;
  alerters::UrlAlerter url;
  alerters::XmlAlerter xml;
  alerters::HtmlAlerter html;
  alerters::AlertPipeline pipeline(&url, &xml, &html);
  trigger::TriggerEngine te;
  reporter::Outbox outbox;
  query::QueryEngine qe(&wh);
  reporter::Reporter rep(&outbox, &qe);
  SubscriptionManager mgr(SubscriptionManager::Components{
      &mqp, &url, &xml, &html, &pipeline, &te, &rep, &qe, &clock});
  ASSERT_TRUE(mgr.AttachStorage(path).ok());
  EXPECT_EQ(mgr.subscription_count(), 1u);
  EXPECT_EQ(mqp.matcher().size(), 1u);
  EXPECT_EQ(url.condition_count(), 1u);
  // The recovered subscription is live: duplicates rejected.
  EXPECT_TRUE(mgr.Subscribe(kSimpleSub, "a@x").status().IsAlreadyExists());
  // Recipients added before the restart were recovered too.
  EXPECT_TRUE(mgr.AddRecipient("Simple", "extra@x").IsAlreadyExists());
}

TEST_F(ManagerPersistenceTest, UsersSurviveRestart) {
  std::string path = dir_ / "users.log";
  {
    UserRegistry users;
    ASSERT_TRUE(users.AttachStorage(path).ok());
    ASSERT_TRUE(users.AddUser({"bob", "bob@x", true}).ok());
    ASSERT_TRUE(users.AddUser({"eve", "eve@x", false}).ok());
    ASSERT_TRUE(users.SetPrivileged("eve", true).ok());
    ASSERT_TRUE(users.AddUser({"gone", "g@x", false}).ok());
    ASSERT_TRUE(users.RemoveUser("gone").ok());
  }
  UserRegistry users;
  ASSERT_TRUE(users.AttachStorage(path).ok());
  EXPECT_EQ(users.user_count(), 2u);
  ASSERT_TRUE(users.Find("bob").has_value());
  EXPECT_TRUE(users.Find("bob")->privileged);
  EXPECT_TRUE(users.Find("eve")->privileged);
  EXPECT_FALSE(users.Find("gone").has_value());
}

}  // namespace
}  // namespace xymon::manager
