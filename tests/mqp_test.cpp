#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "src/mqp/aes_matcher.h"
#include "src/mqp/brute_matcher.h"
#include "src/mqp/counting_matcher.h"
#include "src/mqp/map_aes_matcher.h"
#include "src/mqp/parallel_pool.h"
#include "src/mqp/processor.h"
#include "src/mqp/workload.h"

namespace xymon::mqp {
namespace {

std::vector<ComplexEventId> MatchSorted(const Matcher& m, const EventSet& s) {
  std::vector<ComplexEventId> out;
  m.Match(s, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Matcher> MakeMatcher(const std::string& name) {
  if (name == "aes") return std::make_unique<AesMatcher>();
  if (name == "brute") return std::make_unique<BruteForceMatcher>();
  if (name == "counting") return std::make_unique<CountingMatcher>();
  if (name == "aes-map") return std::make_unique<MapAesMatcher>();
  if (name == "aes-naive") {
    AesMatcher::Options options;
    options.adaptive_iteration = false;
    return std::make_unique<AesMatcher>(options);
  }
  ADD_FAILURE() << "unknown matcher " << name;
  return nullptr;
}

// Behavioural tests shared across all three matcher implementations.
class MatcherContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Matcher> matcher_ = MakeMatcher(GetParam());
};

TEST_P(MatcherContractTest, PaperFigure4Example) {
  // The complex events of Figure 4 (left column).
  struct {
    ComplexEventId id;
    EventSet events;
  } complex_events[] = {
      {0, {0}},           // c0: a0
      {10, {1, 3}},       // c10: a1 a3
      {201, {1, 3, 4}},   // c201: a1 a3 a4
      {3, {1, 3, 5}},     // c3: a1 a3 a5
      {43, {1, 5, 6}},    // c43: a1 a5 a6
      {25, {1, 5, 8}},    // c25: a1 a5 a8
      {9, {1, 7}},        // c9: a1 a7
      {527, {2}},         // c527: a2
      {15, {3}},          // c15: a3
      {4, {5}},           // c4: a5
      {7, {5, 6}},        // c7: a5 a6
      {11, {5, 7}},       // c11: a5 a7
      {50, {5, 8}},       // c50: a5 a8
      {60, {8, 9}},       // c60: a8 a9
      {13, {8, 12}},      // c13: a8 a12
      {31, {99, 101}},    // c31: a99 a101
  };
  for (const auto& ce : complex_events) {
    ASSERT_TRUE(matcher_->Insert(ce.id, ce.events).ok());
  }

  // Paper walk-through 1: S = {a1, a3, a5} detects c10, c3, c15, c4.
  EXPECT_EQ(MatchSorted(*matcher_, {1, 3, 5}),
            (std::vector<ComplexEventId>{3, 4, 10, 15}));

  // Paper walk-through 2: S = {a1, a4, a8} detects c15? No — it detects
  // nothing but the prefix steps; per the paper: a1 alone no, a1a4 no...
  // S = {1, 4, 8}: subsets registered: none complete except... c15 is {3}
  // (not contained), so no match except none.
  EXPECT_TRUE(MatchSorted(*matcher_, {1, 4, 8}).empty());

  // Singletons.
  EXPECT_EQ(MatchSorted(*matcher_, {2}), (std::vector<ComplexEventId>{527}));
  EXPECT_EQ(MatchSorted(*matcher_, {0}), (std::vector<ComplexEventId>{0}));

  // Large superset catches everything consistent.
  EXPECT_EQ(MatchSorted(*matcher_, {1, 3, 4, 5, 6, 7, 8, 9}),
            (std::vector<ComplexEventId>{3, 4, 7, 9, 10, 11, 15, 25, 43, 50,
                                         60, 201}));
}

TEST_P(MatcherContractTest, EmptyDocumentMatchesNothing) {
  ASSERT_TRUE(matcher_->Insert(1, {5}).ok());
  EXPECT_TRUE(MatchSorted(*matcher_, {}).empty());
}

TEST_P(MatcherContractTest, RejectsMalformedComplexEvents) {
  EXPECT_TRUE(matcher_->Insert(1, {}).IsInvalidArgument());
  EXPECT_TRUE(matcher_->Insert(1, {3, 3}).IsInvalidArgument());
  EXPECT_TRUE(matcher_->Insert(1, {5, 3}).IsInvalidArgument());
}

TEST_P(MatcherContractTest, RejectsDuplicateIds) {
  ASSERT_TRUE(matcher_->Insert(1, {1, 2}).ok());
  EXPECT_TRUE(matcher_->Insert(1, {3, 4}).IsAlreadyExists());
}

TEST_P(MatcherContractTest, DuplicateEventSetsBothReported) {
  // Two subscriptions can register the same conjunction.
  ASSERT_TRUE(matcher_->Insert(1, {2, 4}).ok());
  ASSERT_TRUE(matcher_->Insert(2, {2, 4}).ok());
  EXPECT_EQ(MatchSorted(*matcher_, {2, 4}),
            (std::vector<ComplexEventId>{1, 2}));
}

TEST_P(MatcherContractTest, EraseRemovesOnlyTarget) {
  ASSERT_TRUE(matcher_->Insert(1, {2, 4}).ok());
  ASSERT_TRUE(matcher_->Insert(2, {2, 4}).ok());
  ASSERT_TRUE(matcher_->Insert(3, {2}).ok());
  ASSERT_TRUE(matcher_->Erase(2).ok());
  EXPECT_EQ(MatchSorted(*matcher_, {2, 4}),
            (std::vector<ComplexEventId>{1, 3}));
  EXPECT_TRUE(matcher_->Erase(2).IsNotFound());
  EXPECT_EQ(matcher_->size(), 2u);
}

TEST_P(MatcherContractTest, PrefixIsNotContainment) {
  // {1,2,3} registered; document {1,2} must not fire it.
  ASSERT_TRUE(matcher_->Insert(1, {1, 2, 3}).ok());
  EXPECT_TRUE(MatchSorted(*matcher_, {1, 2}).empty());
  // Non-contiguous containment must fire: {0,1,5,2,9,3} sorted.
  EXPECT_EQ(MatchSorted(*matcher_, {0, 1, 2, 3, 5, 9}),
            (std::vector<ComplexEventId>{1}));
}

TEST_P(MatcherContractTest, SingleEventComplexEvents) {
  for (ComplexEventId id = 0; id < 50; ++id) {
    ASSERT_TRUE(matcher_->Insert(id, {id * 2}).ok());
  }
  EXPECT_EQ(MatchSorted(*matcher_, {0, 2, 4}),
            (std::vector<ComplexEventId>{0, 1, 2}));
  EXPECT_TRUE(MatchSorted(*matcher_, {1, 3, 5}).empty());
}

TEST_P(MatcherContractTest, InsertAfterMatchesIsVisible) {
  ASSERT_TRUE(matcher_->Insert(1, {1}).ok());
  EXPECT_EQ(MatchSorted(*matcher_, {1, 2}).size(), 1u);
  ASSERT_TRUE(matcher_->Insert(2, {2}).ok());
  EXPECT_EQ(MatchSorted(*matcher_, {1, 2}).size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherContractTest,
                         ::testing::Values("aes", "brute", "counting", "aes-map",
                                           "aes-naive"));

// --------------------------------------------------- Equivalence property --

struct EquivalenceParams {
  uint64_t seed;
  uint32_t card_a;
  uint32_t card_c;
  uint32_t d;
  uint32_t s;
};

class MatcherEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParams> {};

TEST_P(MatcherEquivalenceTest, AesAndCountingAgreeWithBruteForce) {
  const EquivalenceParams& p = GetParam();
  WorkloadParams wp;
  wp.card_a = p.card_a;
  wp.card_c = p.card_c;
  wp.d = p.d;
  wp.s = p.s;
  wp.seed = p.seed;
  WorkloadGenerator gen(wp);

  AesMatcher aes;
  BruteForceMatcher brute;
  CountingMatcher counting;
  MapAesMatcher map_aes;
  auto complex_events = gen.GenerateComplexEvents();
  for (ComplexEventId id = 0; id < complex_events.size(); ++id) {
    ASSERT_TRUE(aes.Insert(id, complex_events[id]).ok());
    ASSERT_TRUE(brute.Insert(id, complex_events[id]).ok());
    ASSERT_TRUE(counting.Insert(id, complex_events[id]).ok());
    ASSERT_TRUE(map_aes.Insert(id, complex_events[id]).ok());
  }

  for (const EventSet& doc : gen.GenerateDocuments(200)) {
    auto expected = MatchSorted(brute, doc);
    EXPECT_EQ(MatchSorted(aes, doc), expected);
    EXPECT_EQ(MatchSorted(counting, doc), expected);
    EXPECT_EQ(MatchSorted(map_aes, doc), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MatcherEquivalenceTest,
    ::testing::Values(
        // Dense: small universe, high k — many matches per document.
        EquivalenceParams{1, 50, 500, 3, 20},
        EquivalenceParams{2, 30, 300, 2, 15},
        // The paper's shape scaled down: k = D*C/A.
        EquivalenceParams{3, 1000, 2000, 4, 10},
        EquivalenceParams{4, 200, 1000, 5, 30},
        // Long documents, deep complex events.
        EquivalenceParams{5, 100, 400, 8, 60},
        // Sparse: rare matches.
        EquivalenceParams{6, 10000, 1000, 4, 10},
        // Singleton-heavy.
        EquivalenceParams{7, 40, 200, 1, 10}));

TEST(MatcherEquivalenceTest, DynamicChurnKeepsAgreement) {
  WorkloadParams wp;
  wp.card_a = 100;
  wp.card_c = 300;
  wp.d = 3;
  wp.s = 15;
  wp.seed = 99;
  WorkloadGenerator gen(wp);
  auto complex_events = gen.GenerateComplexEvents();

  AesMatcher aes;
  BruteForceMatcher brute;
  Rng rng(7);
  std::set<ComplexEventId> live;
  for (int round = 0; round < 50; ++round) {
    // Random churn: insert or erase a few complex events.
    for (int op = 0; op < 10; ++op) {
      ComplexEventId id =
          static_cast<ComplexEventId>(rng.Uniform(complex_events.size()));
      if (live.count(id) != 0) {
        ASSERT_TRUE(aes.Erase(id).ok());
        ASSERT_TRUE(brute.Erase(id).ok());
        live.erase(id);
      } else {
        ASSERT_TRUE(aes.Insert(id, complex_events[id]).ok());
        ASSERT_TRUE(brute.Insert(id, complex_events[id]).ok());
        live.insert(id);
      }
    }
    for (const EventSet& doc : gen.GenerateDocuments(20)) {
      ASSERT_EQ(MatchSorted(aes, doc), MatchSorted(brute, doc));
    }
  }
}

// ------------------------------------------------------------- AES extras --

TEST(AesMatcherTest, StatsAccumulate) {
  AesMatcher aes;
  ASSERT_TRUE(aes.Insert(1, {1, 2}).ok());
  std::vector<ComplexEventId> out;
  aes.Match({1, 2}, &out);
  aes.Match({3}, &out);
  EXPECT_EQ(aes.stats().documents, 2u);
  EXPECT_EQ(aes.stats().notifications, 1u);
  EXPECT_GT(aes.stats().lookups, 0u);
}

TEST(AesMatcherTest, StructureMemoryGrowsWithComplexEvents) {
  WorkloadParams wp;
  wp.card_a = 1000;
  wp.card_c = 2000;
  wp.d = 4;
  wp.seed = 5;
  WorkloadGenerator gen(wp);
  AesMatcher small_matcher, big_matcher;
  auto events = gen.GenerateComplexEvents();
  for (ComplexEventId id = 0; id < 100; ++id) {
    ASSERT_TRUE(small_matcher.Insert(id, events[id]).ok());
  }
  for (ComplexEventId id = 0; id < 2000; ++id) {
    ASSERT_TRUE(big_matcher.Insert(id, events[id]).ok());
  }
  EXPECT_GT(big_matcher.StructureBytes(), small_matcher.StructureBytes());
  EXPECT_GT(big_matcher.MemoryUsage(), big_matcher.StructureBytes());
}

TEST(AesMatcherTest, ManySharedPrefixes) {
  // Hundreds of complex events through the same first event — the "Amazon
  // URL" hotspot the paper calls out (high k on one atomic event).
  AesMatcher aes;
  for (ComplexEventId id = 0; id < 500; ++id) {
    ASSERT_TRUE(aes.Insert(id, {0, id + 1}).ok());
  }
  EXPECT_EQ(MatchSorted(aes, {0, 7}), (std::vector<ComplexEventId>{6}));
  auto all = MatchSorted(aes, [] {
    EventSet s;
    for (AtomicEvent a = 0; a <= 500; ++a) s.push_back(a);
    return s;
  }());
  EXPECT_EQ(all.size(), 500u);
}


// ------------------------------------------------------- ParallelMqpPool --

TEST(ParallelMqpPoolTest, MatchesAcrossThreadsAgreeWithOracle) {
  WorkloadParams wp;
  wp.card_a = 500;
  wp.card_c = 2000;
  wp.d = 3;
  wp.s = 25;
  wp.seed = 77;
  WorkloadGenerator gen(wp);
  auto complex_events = gen.GenerateComplexEvents();

  BruteForceMatcher oracle;
  std::mutex mu;
  std::map<uint64_t, std::vector<ComplexEventId>> got;
  ParallelMqpPool pool(4, [&](const MqpNotification& n) {
    std::lock_guard<std::mutex> lock(mu);
    got[n.docid].push_back(n.complex_event);
  });
  for (ComplexEventId id = 0; id < complex_events.size(); ++id) {
    ASSERT_TRUE(oracle.Insert(id, complex_events[id]).ok());
    ASSERT_TRUE(pool.Register(id, complex_events[id]).ok());
  }

  auto docs = gen.GenerateDocuments(500);
  for (uint64_t i = 0; i < docs.size(); ++i) {
    AlertMessage alert;
    alert.docid = i;
    alert.events = docs[i];
    pool.Submit(std::move(alert));
  }
  pool.Flush();
  EXPECT_EQ(pool.documents_processed(), 500u);

  for (uint64_t i = 0; i < docs.size(); ++i) {
    auto expected = MatchSorted(oracle, docs[i]);
    std::vector<ComplexEventId> actual;
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = got.find(i);
      if (it != got.end()) actual = it->second;
    }
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "doc " << i;
  }
}

TEST(ParallelMqpPoolTest, RegistrationQuiescesSafely) {
  std::atomic<uint64_t> notifications{0};
  ParallelMqpPool pool(3, [&](const MqpNotification&) { ++notifications; });
  ASSERT_TRUE(pool.Register(1, {1, 2}).ok());

  // Interleave submissions with registrations and unregistrations.
  for (int round = 0; round < 20; ++round) {
    for (int d = 0; d < 50; ++d) {
      AlertMessage alert;
      alert.docid = static_cast<uint64_t>(round * 50 + d);
      alert.events = {1, 2, 3};
      pool.Submit(std::move(alert));
    }
    ComplexEventId id = static_cast<ComplexEventId>(100 + round);
    ASSERT_TRUE(pool.Register(id, {3, static_cast<AtomicEvent>(10 + round)}).ok());
    if (round % 2 == 1) {
      ASSERT_TRUE(pool.Unregister(id).ok());
    }
  }
  pool.Flush();
  EXPECT_EQ(pool.documents_processed(), 1000u);
  // Every document matches complex event 1 on whichever replica it hit.
  EXPECT_GE(notifications.load(), 1000u);
}

TEST(ParallelMqpPoolTest, DuplicateRegistrationRollsBack) {
  ParallelMqpPool pool(2, [](const MqpNotification&) {});
  ASSERT_TRUE(pool.Register(1, {5}).ok());
  EXPECT_TRUE(pool.Register(1, {6}).IsAlreadyExists());
  // The failed registration must not leave {6} behind on any replica.
  std::atomic<uint64_t> hits{0};
  // (Re-check by behaviour: submit a {6} document through a fresh pool is
  // not possible here; instead unregister 1 and re-register with {6}.)
  ASSERT_TRUE(pool.Unregister(1).ok());
  ASSERT_TRUE(pool.Register(1, {6}).ok());
  (void)hits;
}

TEST(ParallelMqpPoolTest, SameUrlAlwaysLandsOnSameReplica) {
  // Stable hash(url) partitioning (not round-robin): every alert for one
  // document must hit one replica, so successive versions of a page meet
  // the same matcher state in submission order.
  ParallelMqpPool pool(4, [](const MqpNotification&) {});
  ASSERT_TRUE(pool.Register(1, {1}).ok());

  const std::string url = "http://example.org/catalog.xml";
  for (int i = 0; i < 100; ++i) {
    AlertMessage alert;
    alert.docid = 7;
    alert.url = url;
    alert.events = {1};
    pool.Submit(std::move(alert));
  }
  pool.Flush();

  std::vector<uint64_t> per_worker = pool.processed_per_worker();
  ASSERT_EQ(per_worker.size(), 4u);
  uint64_t total = 0;
  uint64_t busiest = 0;
  for (uint64_t count : per_worker) {
    total += count;
    busiest = std::max(busiest, count);
  }
  EXPECT_EQ(total, 100u);
  // All 100 alerts for this URL on exactly one replica.
  EXPECT_EQ(busiest, 100u);

  // And different URLs spread: with 64 distinct URLs at least two of the
  // four replicas must see traffic (FNV-1a would need a pathological
  // collision streak to hit one bucket 64 times).
  for (int i = 0; i < 64; ++i) {
    AlertMessage alert;
    alert.docid = static_cast<uint64_t>(100 + i);
    alert.url = "http://example.org/page" + std::to_string(i) + ".xml";
    alert.events = {1};
    pool.Submit(std::move(alert));
  }
  pool.Flush();
  per_worker = pool.processed_per_worker();
  size_t replicas_hit = 0;
  for (uint64_t count : per_worker) {
    if (count > 0) ++replicas_hit;
  }
  EXPECT_GE(replicas_hit, 2u);
}

TEST(AesMatcherTest, StructureStatsDescribeTheTree) {
  AesMatcher aes;
  ASSERT_TRUE(aes.Insert(1, {1, 2, 3}).ok());
  ASSERT_TRUE(aes.Insert(2, {1, 2, 9}).ok());
  ASSERT_TRUE(aes.Insert(3, {5}).ok());
  auto stats = aes.CollectStructureStats();
  EXPECT_EQ(stats.max_depth, 3u);
  ASSERT_EQ(stats.cells_per_level.size(), 3u);
  EXPECT_EQ(stats.cells_per_level[0], 2u);  // a1, a5
  EXPECT_EQ(stats.cells_per_level[1], 1u);  // a2 under a1
  EXPECT_EQ(stats.cells_per_level[2], 2u);  // a3, a9
  EXPECT_EQ(stats.marks_per_level[0], 1u);  // c3 at a5
  EXPECT_EQ(stats.marks_per_level[2], 2u);  // c1, c2
  // Substructures: {a1: 4 cells}, {a5: 1 cell}.
  EXPECT_EQ(stats.max_substructure_cells, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_substructure_cells, 2.5);
}

// --------------------------------------------------------------- Workload --

TEST(WorkloadTest, SetsAreOrderedAndSized) {
  WorkloadParams wp;
  wp.card_a = 500;
  wp.card_c = 100;
  wp.d = 6;
  wp.s = 25;
  WorkloadGenerator gen(wp);
  for (const EventSet& ce : gen.GenerateComplexEvents()) {
    EXPECT_EQ(ce.size(), 6u);
    EXPECT_TRUE(IsOrderedSet(ce));
    for (AtomicEvent a : ce) EXPECT_LT(a, 500u);
  }
  for (const EventSet& doc : gen.GenerateDocuments(50)) {
    EXPECT_EQ(doc.size(), 25u);
    EXPECT_TRUE(IsOrderedSet(doc));
  }
}

TEST(WorkloadTest, DeterministicFromSeed) {
  WorkloadParams wp;
  wp.seed = 123;
  wp.card_c = 10;
  EXPECT_EQ(WorkloadGenerator(wp).GenerateComplexEvents(),
            WorkloadGenerator(wp).GenerateComplexEvents());
}

TEST(WorkloadTest, ExpectedKFormula) {
  WorkloadParams wp;
  wp.card_a = 100000;
  wp.card_c = 1000000;
  wp.d = 4;
  EXPECT_DOUBLE_EQ(wp.ExpectedK(), 40.0);
}

// -------------------------------------------------------------- Processor --

TEST(ProcessorTest, EmitsNotificationEnvelope) {
  MonitoringQueryProcessor mqp;
  ASSERT_TRUE(mqp.Register(7, {1, 2}).ok());
  AlertMessage alert;
  alert.docid = 55;
  alert.url = "http://x/";
  alert.events = {1, 2, 9};
  alert.info_xml = "<doc/>";
  std::vector<MqpNotification> out;
  mqp.Process(alert, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].complex_event, 7u);
  EXPECT_EQ(out[0].docid, 55u);
  EXPECT_EQ(out[0].url, "http://x/");
  EXPECT_EQ(out[0].info_xml, "<doc/>");
}

TEST(PartitionedMatcherTest, MatchesAcrossPartitionsAndBalances) {
  SubscriptionPartitionedMatcher part(4);
  BruteForceMatcher oracle;
  WorkloadParams wp;
  wp.card_a = 200;
  wp.card_c = 400;
  wp.d = 3;
  wp.s = 20;
  wp.seed = 31;
  WorkloadGenerator gen(wp);
  auto events = gen.GenerateComplexEvents();
  for (ComplexEventId id = 0; id < events.size(); ++id) {
    ASSERT_TRUE(part.Insert(id, events[id]).ok());
    ASSERT_TRUE(oracle.Insert(id, events[id]).ok());
  }
  EXPECT_EQ(part.size(), 400u);
  // Per-partition memory is a fraction of the total.
  EXPECT_LT(part.MaxPartitionBytes(), part.MemoryUsage());
  for (const EventSet& doc : gen.GenerateDocuments(50)) {
    EXPECT_EQ(MatchSorted(part, doc), MatchSorted(oracle, doc));
  }
  ASSERT_TRUE(part.Erase(3).ok());
  EXPECT_TRUE(part.Erase(3).IsNotFound());
  EXPECT_EQ(part.size(), 399u);
}

}  // namespace
}  // namespace xymon::mqp
