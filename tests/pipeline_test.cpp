// IngestPipeline tests: shard-count determinism (the tentpole acceptance
// criterion — a 4-shard monitor delivers exactly the reports a 1-shard one
// does, in the same order), batch/sequential equivalence, per-stage
// counters, sharded-warehouse recovery, and a Subscribe/Unsubscribe-vs-batch
// hammer meant to run under ThreadSanitizer (-DXYMON_SANITIZE=THREAD).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gate_env.h"
#include "src/storage/env.h"
#include "src/system/monitor.h"
#include "src/webstub/crawler.h"

namespace xymon::system {
namespace {

// Fires a notification (and an immediate report e-mail) for every modified
// page anywhere under the synthetic hosts.
constexpr char kWatchAll[] = R"(
subscription WatchAll
monitoring
select default
where URL extends "http://w" and modified self
report when immediate
)";

// Element-level monitoring with payload selection on one host, batched into
// count-triggered reports.
constexpr char kNewItems[] = R"(
subscription NewItems
monitoring
select X
from self//Item X
where URL extends "http://w0." and new X
report
when count >= 2
)";

/// Deterministic multi-round workload, generated independently of any
/// monitor: ~`urls` pages across 5 hosts (so hash(url) spreads over
/// shards), each page re-fetched on a seeded schedule with bodies whose
/// item sets drift version to version (new/deleted/updated elements).
std::vector<std::vector<webstub::FetchedDoc>> GenerateBatches(int rounds,
                                                              int urls) {
  std::mt19937 rng(0xC0FFEE);
  std::vector<int> version(urls, 0);
  std::vector<std::vector<webstub::FetchedDoc>> batches;
  for (int r = 0; r < rounds; ++r) {
    std::vector<webstub::FetchedDoc> batch;
    for (int u = 0; u < urls; ++u) {
      if (r > 0 && rng() % 3 == 0) continue;  // not every page every round
      int v = ++version[u];
      webstub::FetchedDoc doc;
      doc.url = "http://w" + std::to_string(u % 5) + ".example.org/doc" +
                std::to_string(u) + ".xml";
      doc.body = "<Catalog>";
      int items = 1 + (u % 3) + (v % 2);
      for (int k = 0; k < items; ++k) {
        doc.body +=
            "<Item>widget" + std::to_string((u * 7 + v * 3 + k) % 11) +
            "</Item>";
      }
      doc.body += "<rev>" + std::to_string(v) + "</rev></Catalog>";
      batch.push_back(std::move(doc));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct RunResult {
  XylemeMonitor::Stats stats;
  std::vector<std::pair<std::string, std::string>> mail;  // (to, body)

  bool operator==(const RunResult&) const = default;
};

RunResult RunWorkload(size_t num_shards,
                      const std::vector<std::vector<webstub::FetchedDoc>>&
                          batches) {
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = num_shards;
  XylemeMonitor monitor(&clock, options);
  EXPECT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());
  EXPECT_TRUE(monitor.Subscribe(kNewItems, "items@example.org").ok());

  for (const auto& batch : batches) {
    monitor.ProcessFetchBatch(batch);
    clock.Advance(kHour);
    monitor.Tick();
  }
  clock.Advance(kWeek);
  monitor.Tick();

  RunResult out;
  out.stats = monitor.stats();
  for (const reporter::Email& email : monitor.outbox().sent()) {
    out.mail.emplace_back(email.to, email.body);
  }
  return out;
}

TEST(PipelineDeterminismTest, FourShardsDeliverExactlyTheOneShardReports) {
  auto batches = GenerateBatches(/*rounds=*/8, /*urls=*/40);
  RunResult one = RunWorkload(1, batches);
  RunResult four = RunWorkload(4, batches);

  // The workload actually exercised the flow.
  ASSERT_GT(one.stats.documents_processed, 100u);
  ASSERT_GT(one.stats.notifications, 10u);
  ASSERT_FALSE(one.mail.empty());

  // Same stats, same e-mails, same order — bit for bit.
  EXPECT_EQ(one.stats, four.stats);
  ASSERT_EQ(one.mail.size(), four.mail.size());
  for (size_t i = 0; i < one.mail.size(); ++i) {
    EXPECT_EQ(one.mail[i], four.mail[i]) << "mail " << i;
  }
}

TEST(PipelineDeterminismTest, MultiShardActuallyPartitionsTheFlow) {
  auto batches = GenerateBatches(/*rounds=*/4, /*urls=*/40);
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = 4;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());
  for (const auto& batch : batches) monitor.ProcessFetchBatch(batch);

  size_t shards_with_documents = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < monitor.pipeline().shard_count(); ++i) {
    uint64_t count = monitor.pipeline().shard(i).warehouse.document_count();
    total += count;
    if (count > 0) ++shards_with_documents;
  }
  EXPECT_EQ(total, 40u);
  EXPECT_GE(shards_with_documents, 2u);
  // Every document's partition is its URL hash.
  for (const auto& batch : batches) {
    for (const webstub::FetchedDoc& doc : batch) {
      size_t owner = monitor.pipeline().ShardFor(doc.url);
      EXPECT_NE(
          monitor.pipeline().shard(owner).warehouse.GetMeta(doc.url),
          nullptr);
    }
  }
}

TEST(PipelineBatchTest, SingleShardBatchMatchesSequentialBitForBit) {
  auto batches = GenerateBatches(/*rounds=*/6, /*urls=*/25);

  SimClock clock_a(1000);
  XylemeMonitor sequential(&clock_a);
  ASSERT_TRUE(sequential.Subscribe(kWatchAll, "all@example.org").ok());
  ASSERT_TRUE(sequential.Subscribe(kNewItems, "items@example.org").ok());

  SimClock clock_b(1000);
  XylemeMonitor batched(&clock_b);
  ASSERT_TRUE(batched.Subscribe(kWatchAll, "all@example.org").ok());
  ASSERT_TRUE(batched.Subscribe(kNewItems, "items@example.org").ok());

  for (const auto& batch : batches) {
    for (const webstub::FetchedDoc& doc : batch) sequential.ProcessFetch(doc);
    batched.ProcessFetchBatch(batch);
    clock_a.Advance(kHour);
    clock_b.Advance(kHour);
    sequential.Tick();
    batched.Tick();
  }

  EXPECT_EQ(sequential.stats(), batched.stats());
  ASSERT_EQ(sequential.outbox().sent().size(), batched.outbox().sent().size());
  for (size_t i = 0; i < sequential.outbox().sent().size(); ++i) {
    EXPECT_EQ(sequential.outbox().sent()[i].body,
              batched.outbox().sent()[i].body)
        << "mail " << i;
  }
}

TEST(PipelineStatsTest, StageCountersTrackTheFlow) {
  SimClock clock(1000);
  XylemeMonitor monitor(&clock);
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  auto batches = GenerateBatches(/*rounds=*/3, /*urls=*/10);
  for (const auto& batch : batches) monitor.ProcessFetchBatch(batch);
  // One degraded document: a warehoused-XML page returning garbage.
  monitor.ProcessFetch("http://w0.example.org/doc0.xml", "<broken");

  PipelineStats ps = monitor.pipeline_stats();
  EXPECT_EQ(ps.shards, 1u);
  EXPECT_EQ(ps.batches, static_cast<uint64_t>(batches.size()) + 1);
  EXPECT_EQ(ps.ingest.documents, monitor.stats().documents_processed);
  EXPECT_EQ(ps.detect.documents, monitor.stats().documents_processed -
                                     monitor.stats().degraded_documents);
  EXPECT_EQ(ps.match.documents, monitor.stats().alerts_raised);
  EXPECT_LE(ps.notify.documents, ps.match.documents);
  EXPECT_GT(ps.notify.documents, 0u);
  EXPECT_EQ(monitor.stats().degraded_documents, 1u);

  // The operator report carries the per-stage view.
  std::string status = monitor.StatusReport();
  EXPECT_NE(status.find("<Pipeline"), std::string::npos);
  EXPECT_NE(status.find("\"ingest\""), std::string::npos);
  EXPECT_NE(status.find("\"notify\""), std::string::npos);
}

TEST(PipelineRecoveryTest, ShardedWarehousePartitionsRecoverAcrossReopen) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "xymon_pipeline_recovery";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string wh_path = (dir / "wh.log").string();

  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = 4;
  options.warehouse_path = wh_path;

  auto batches = GenerateBatches(/*rounds=*/2, /*urls=*/20);
  const std::string probe_url = batches[0][0].url;
  uint64_t probe_docid = 0;
  {
    XylemeMonitor monitor(&clock, options);
    ASSERT_TRUE(monitor.storage_status().ok())
        << monitor.storage_status().ToString();
    ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());
    for (const auto& batch : batches) monitor.ProcessFetchBatch(batch);
    EXPECT_EQ(monitor.pipeline().total_document_count(), 20u);
    const warehouse::DocMeta* meta =
        monitor.pipeline().WarehouseFor(probe_url).GetMeta(probe_url);
    ASSERT_NE(meta, nullptr);
    probe_docid = meta->docid;
    ASSERT_TRUE(monitor.CheckpointStorage().ok());
  }

  auto reopened = XylemeMonitor::Open(&clock, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  XylemeMonitor& monitor = **reopened;
  EXPECT_EQ(monitor.pipeline().total_document_count(), 20u);

  // The probe URL kept its DOCID (the central map was rebuilt from the
  // partitions) and its recovered version still diffs: a changed body is
  // detected as `modified self` on the owning shard.
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());
  clock.Advance(kDay);
  monitor.ProcessFetch(probe_url, "<Catalog><Item>changed</Item></Catalog>");
  const warehouse::DocMeta* meta =
      monitor.pipeline().WarehouseFor(probe_url).GetMeta(probe_url);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->docid, probe_docid);
  EXPECT_EQ(monitor.stats().notifications, 1u);

  fs::remove_all(dir);
}

// Run under TSan (-DXYMON_SANITIZE=THREAD) this is the registration-quiesce
// race hunt: one thread mutates subscriptions while another pushes batches
// through 4 shard worker threads. The api mutex must serialize them — a
// Subscribe landing mid-batch would race the shard threads' reads of the
// alerter/MQP structures.
TEST(PipelineConcurrencyTest, SubscribeUnsubscribeDuringBatchesIsQuiesced) {
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = 4;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  auto batches = GenerateBatches(/*rounds=*/12, /*urls=*/30);

  std::atomic<bool> done{false};
  std::atomic<int> churned{0};
  std::thread churn([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto sub = monitor.Subscribe(kNewItems, "churn@example.org");
      if (sub.ok()) {
        EXPECT_TRUE(monitor.Unsubscribe(sub.value()).ok());
        churned.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (const auto& batch : batches) {
    monitor.ProcessFetchBatch(batch);
  }
  done.store(true);
  churn.join();

  EXPECT_GT(monitor.stats().documents_processed, 100u);
  // The churned subscription is gone: every shard's matcher holds only
  // WatchAll's complex event.
  for (size_t i = 0; i < monitor.pipeline().shard_count(); ++i) {
    EXPECT_EQ(monitor.pipeline().shard(i).mqp.matcher().size(), 1u);
  }
}

using xymon::testing::GateEnv;

// The no-quiesce acceptance criterion: with 4 shards, one partition's
// checkpoint is held open mid-I/O while a batch touching only the other
// three shards runs to completion — the flow never stops for a checkpoint.
TEST(PipelineCheckpointTest, CheckpointOnOneShardDoesNotQuiesceTheFlow) {
  GateEnv env;
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = 4;
  options.warehouse_path = "mon/wh";
  options.env = &env;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.storage_status().ok())
      << monitor.storage_status().ToString();
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  auto batches = GenerateBatches(/*rounds=*/1, /*urls=*/40);
  monitor.ProcessFetchBatch(batches[0]);

  // Hold shard 0's partition checkpoint open at its first temp-file write.
  env.ArmGate("mon/wh.ckpt.tmp");
  std::atomic<bool> checkpoint_done{false};
  Status checkpoint_status;
  std::thread checkpoint([&] {
    checkpoint_status = monitor.CheckpointStorage();
    checkpoint_done.store(true);
  });
  env.WaitUntilEntered();

  // A batch owned entirely by shards 1–3 completes while shard 0 is still
  // inside its checkpoint (a full quiesce would deadlock right here).
  std::vector<webstub::FetchedDoc> other_shards;
  for (int u = 0; other_shards.size() < 12; ++u) {
    webstub::FetchedDoc doc;
    doc.url = "http://w" + std::to_string(u % 5) + ".example.org/late" +
              std::to_string(u) + ".xml";
    if (monitor.pipeline().ShardFor(doc.url) == 0) continue;
    doc.body = "<Catalog><Item>late</Item></Catalog>";
    other_shards.push_back(std::move(doc));
  }
  uint64_t before = monitor.stats().documents_processed;
  monitor.ProcessFetchBatch(other_shards);
  EXPECT_EQ(monitor.stats().documents_processed, before + 12);
  EXPECT_FALSE(checkpoint_done.load());

  env.ReleaseGate();
  checkpoint.join();
  ASSERT_TRUE(checkpoint_status.ok()) << checkpoint_status.ToString();
  ASSERT_NE(monitor.storage_hub(), nullptr);
  EXPECT_EQ(monitor.storage_hub()->last_committed_epoch(), 1u);
}

// Epoch-consistent triggers: a notification-raised continuous query
// evaluates at the post-batch barrier, after every document of the batch is
// ingested — for every shard count. The batch updates the products page
// (raising the trigger) *before* the market page it queries; both shard
// counts must still report the market page's post-batch contents.
TEST(PipelineTriggerTest, NotificationTriggersSeeTheWholeBatchOnEveryShardCount) {
  auto run = [](size_t num_shards) {
    SimClock clock(1000);
    XylemeMonitor::Options options;
    options.num_shards = num_shards;
    XylemeMonitor monitor(&clock, options);
    EXPECT_TRUE(monitor
                    .Subscribe(R"(
subscription XylemeCompetitors
monitoring ChangeInMyProducts
select default
where URL = "http://www.xyleme.com/products.xml" and modified self
continuous MyCompetitors
select c from market//competitor c
when XylemeCompetitors.ChangeInMyProducts
report when immediate
)",
                               "ceo@xyleme.com")
                    .ok());
    monitor.AddDomainRule({"market", "", "competitors", ""});
    monitor.ProcessFetchBatch(
        {{"http://scan/market.xml",
          "<competitors><competitor>conquer1</competitor></competitors>"},
         {"http://www.xyleme.com/products.xml", "<p>v1</p>"}});
    // The deciding batch: the modified products page precedes the market
    // update in submission order.
    monitor.ProcessFetchBatch(
        {{"http://www.xyleme.com/products.xml", "<p>v2</p>"},
         {"http://scan/market.xml",
          "<competitors><competitor>conquer2</competitor></competitors>"}});
    std::vector<std::pair<std::string, std::string>> mail;
    for (const reporter::Email& email : monitor.outbox().sent()) {
      mail.emplace_back(email.to, email.body);
    }
    return std::make_pair(monitor.trigger_engine().firings(), mail);
  };

  auto [one_firings, one_mail] = run(1);
  auto [four_firings, four_mail] = run(4);
  EXPECT_EQ(one_firings, 1u);
  EXPECT_EQ(one_firings, four_firings);
  ASSERT_FALSE(one_mail.empty());
  EXPECT_EQ(one_mail, four_mail);
  // The continuous query saw the market page as of the END of the batch.
  bool saw_post_batch = false;
  for (const auto& [to, body] : one_mail) {
    if (body.find("conquer2") != std::string::npos) saw_post_batch = true;
  }
  EXPECT_TRUE(saw_post_batch);
}

}  // namespace
}  // namespace xymon::system
