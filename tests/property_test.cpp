// Cross-implementation property tests: each optimized component is checked
// against a naive reference evaluator on randomized inputs. These are the
// tests that catch "fast but wrong".

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/alerters/condition.h"
#include "src/alerters/xml_alerter.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/reporter/reporter.h"
#include "src/warehouse/warehouse.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace xymon {
namespace {

using alerters::Condition;
using alerters::ConditionKind;
using mqp::AtomicEvent;

// ------------------------------------------------ XML alerter vs reference --

/// Naive reference for element conditions: walk every element, gather its
/// words by brute force, test every condition directly.
class NaiveXmlDetector {
 public:
  void Register(AtomicEvent code, const Condition& c) {
    conditions_.emplace_back(code, c);
  }

  std::set<AtomicEvent> Detect(const warehouse::IngestResult& ingest) const {
    std::set<AtomicEvent> out;
    std::map<const xml::Node*, std::set<xmldiff::ChangeOp>> ops;
    std::set<const xml::Node*> deleted_roots;
    for (const auto& change : ingest.diff.changes) {
      ops[change.element].insert(change.op);
    }
    // Collect every element to evaluate: current doc + deleted subtrees.
    std::vector<const xml::Node*> elements;
    if (ingest.current != nullptr && ingest.current->root != nullptr &&
        ingest.meta.status != warehouse::DocStatus::kDeleted) {
      Collect(ingest.current->root.get(), &elements);
    }
    for (const auto& change : ingest.diff.changes) {
      if (change.op == xmldiff::ChangeOp::kDeleted) {
        elements.push_back(change.element);
      }
    }
    std::sort(elements.begin(), elements.end());
    elements.erase(std::unique(elements.begin(), elements.end()),
                   elements.end());

    for (const xml::Node* el : elements) {
      for (const auto& [code, c] : conditions_) {
        if (Matches(*el, c, ops)) out.insert(code);
      }
    }
    // self contains: word anywhere in the live document.
    if (ingest.current != nullptr && ingest.current->root != nullptr &&
        ingest.meta.status != warehouse::DocStatus::kDeleted) {
      auto words = SubtreeWords(*ingest.current->root);
      for (const auto& [code, c] : conditions_) {
        if (c.kind != ConditionKind::kSelfContains) continue;
        if (words.count(ToLower(c.str_value)) != 0) out.insert(code);
      }
    }
    return out;
  }

 private:
  static void Collect(const xml::Node* n,
                      std::vector<const xml::Node*>* out) {
    if (n->is_element()) out->push_back(n);
    for (const auto& c : n->children()) Collect(c.get(), out);
  }

  /// Words of a subtree, tokenized per text node — element boundaries
  /// separate words ("<price>10</price><name>lens..." must not merge into
  /// "10lens"), matching the alerter's per-text-node tokenization.
  static std::set<std::string> SubtreeWords(const xml::Node& el) {
    std::set<std::string> out;
    el.VisitPostorder([&out](const xml::Node& n) {
      if (!n.is_text()) return;
      for (const auto& w : TokenizeWords(n.text())) out.insert(w);
    });
    return out;
  }

  bool Matches(
      const xml::Node& el, const Condition& c,
      const std::map<const xml::Node*, std::set<xmldiff::ChangeOp>>& ops)
      const {
    if (c.kind != ConditionKind::kElementChange) return false;
    if (el.name() != c.tag) return false;
    if (c.change_op.has_value()) {
      auto it = ops.find(&el);
      if (it == ops.end() || it->second.count(*c.change_op) == 0) return false;
    }
    if (c.word.empty()) return true;
    if (c.strict) {
      std::set<std::string> direct;
      for (const auto& child : el.children()) {
        if (!child->is_text()) continue;
        for (const auto& w : TokenizeWords(child->text())) direct.insert(w);
      }
      return direct.count(ToLower(c.word)) != 0;
    }
    return SubtreeWords(el).count(ToLower(c.word)) != 0;
  }

  std::vector<std::pair<AtomicEvent, Condition>> conditions_;
};

std::string RandomCatalog(Rng* rng, int generation) {
  static const char* kWords[] = {"camera", "tv",    "radio", "stereo",
                                 "laptop", "cable", "book",  "lens"};
  std::string out = "<catalog>";
  int products = 3 + static_cast<int>(rng->Uniform(5));
  for (int i = 0; i < products; ++i) {
    // Stable ids with churn: generation shifts which ids exist and some text.
    int id = i + (generation / 2);
    out += "<Product id=\"" + std::to_string(id) + "\">";
    out += "<name>" + std::string(kWords[(id * 7 + generation) % 8]) + " " +
           std::string(kWords[id % 8]) + "</name>";
    if (rng->Bernoulli(0.7)) {
      out += "<price>" + std::to_string(10 + (id * 13 + generation) % 90) +
             "</price>";
    }
    out += "</Product>";
  }
  out += "</catalog>";
  return out;
}

class XmlAlerterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlAlerterPropertyTest, AgreesWithNaiveReference) {
  Rng rng(GetParam() * 1009 + 3);
  static const char* kWords[] = {"camera", "tv",    "radio", "stereo",
                                 "laptop", "cable", "book",  "lens"};

  alerters::XmlAlerter alerter;
  NaiveXmlDetector reference;
  AtomicEvent code = 1;
  // The manager registers each distinct condition exactly once (dedup by
  // Key()); mirror that invariant here.
  std::set<std::string> seen_keys;
  auto register_both = [&](const Condition& c) {
    if (!seen_keys.insert(c.Key()).second) return;
    ASSERT_TRUE(alerter.Register(code, c).ok());
    reference.Register(code, c);
    ++code;
  };
  // A spread of random conditions over tags/ops/words/strictness.
  for (int i = 0; i < 30; ++i) {
    Condition c;
    c.kind = ConditionKind::kElementChange;
    c.tag = rng.Bernoulli(0.7) ? "Product"
                               : (rng.Bernoulli(0.5) ? "name" : "price");
    switch (rng.Uniform(4)) {
      case 0:
        c.change_op = xmldiff::ChangeOp::kNew;
        break;
      case 1:
        c.change_op = xmldiff::ChangeOp::kUpdated;
        break;
      case 2:
        c.change_op = xmldiff::ChangeOp::kDeleted;
        break;
      default:
        break;  // presence
    }
    if (rng.Bernoulli(0.6)) {
      c.word = kWords[rng.Uniform(8)];
      c.strict = rng.Bernoulli(0.3);
    } else if (!c.change_op.has_value()) {
      c.change_op = xmldiff::ChangeOp::kNew;  // bare presence needs op|word
    }
    Condition self;
    self.kind = ConditionKind::kSelfContains;
    self.str_value = kWords[rng.Uniform(8)];

    register_both(c);
    register_both(self);
  }

  warehouse::Warehouse wh;
  for (int generation = 0; generation < 12; ++generation) {
    auto ingest =
        wh.Ingest({"http://p/", RandomCatalog(&rng, generation)}, generation);
    std::vector<AtomicEvent> fast;
    alerter.Detect(ingest, &fast);
    std::set<AtomicEvent> fast_set(fast.begin(), fast.end());
    EXPECT_EQ(fast_set, reference.Detect(ingest))
        << "generation " << generation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlAlerterPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

// ---------------------------------------------- reporter sequence property --

TEST(ReporterPropertyTest, RandomSequencesKeepInvariants) {
  // Invariants under arbitrary notification/tick interleavings:
  //  * buffer size never exceeds atmost_count;
  //  * a generated report always empties the buffer;
  //  * received == buffered + reported_out + dropped (conservation).
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    reporter::Outbox outbox;
    reporter::Reporter reporter(&outbox, nullptr);

    sublang::ReportSpec spec;
    sublang::ReportCondition::Atom atom;
    atom.kind = sublang::ReportCondition::Atom::Kind::kCount;
    atom.cmp = alerters::Comparator::kGe;
    atom.count = 1 + rng.Uniform(10);
    spec.when.atoms.push_back(atom);
    uint64_t cap = 0;
    if (rng.Bernoulli(0.5)) {
      cap = atom.count + rng.Uniform(10);
      spec.atmost_count = cap;
    }
    if (rng.Bernoulli(0.3)) {
      spec.atmost_rate = sublang::Frequency::kDaily;
    }
    ASSERT_TRUE(reporter.AddSubscription("S", spec, {"u@x"}, 0).ok());

    Timestamp now = 0;
    uint64_t sent = 0;
    uint64_t reported_batches = 0;
    for (int op = 0; op < 300; ++op) {
      if (rng.Bernoulli(0.8)) {
        reporter.AddNotification(
            reporter::Notification{"S", "q", "<n/>", now});
        ++sent;
      } else {
        now += rng.Uniform(2 * kDay);
        reporter.Tick(now);
      }
      if (spec.atmost_count.has_value()) {
        ASSERT_LE(reporter.BufferedCount("S"), cap);
      }
      ASSERT_GE(reporter.notifications_received(), sent);
      reported_batches = reporter.reports_generated();
      (void)reported_batches;
    }
    // Conservation: everything sent is either still buffered, was part of a
    // report, or was dropped by atmost.
    EXPECT_EQ(reporter.notifications_received(), sent);
    EXPECT_LE(reporter.BufferedCount("S") + reporter.notifications_dropped(),
              sent);
  }
}

// ------------------------------------------------- diff repeated stability --

TEST(DiffPropertyTest, RediffingIdenticalVersionsStaysEmpty) {
  // After any sequence of mutations, diffing a document against itself is
  // empty, and XIDs assigned once never change on refetch of equal content.
  warehouse::Warehouse wh;
  Rng rng(5);
  std::string prev;
  for (int g = 0; g < 10; ++g) {
    std::string body = RandomCatalog(&rng, g);
    wh.Ingest({"http://p/", body}, g * 10);
    auto again = wh.Ingest({"http://p/", body}, g * 10 + 5);
    EXPECT_EQ(again.meta.status, warehouse::DocStatus::kUnchanged);
    EXPECT_TRUE(again.diff.changes.empty());
    prev = body;
  }
}

}  // namespace
}  // namespace xymon
