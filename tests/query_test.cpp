#include <gtest/gtest.h>

#include "src/query/delta_tracker.h"
#include "src/query/engine.h"
#include "src/query/query.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace xymon::query {
namespace {

std::unique_ptr<xml::Node> Frag(std::string_view text) {
  auto r = xml::ParseFragment(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Query MustParseQuery(std::string name, std::string_view text) {
  auto q = ParseQuery(std::move(name), text);
  EXPECT_TRUE(q.ok()) << q.status().ToString() << " for: " << text;
  return std::move(q).value();
}

// ---------------------------------------------------------------- Parsing --

TEST(QueryParseTest, PaperAmsterdamQuery) {
  Query q = MustParseQuery("AmsterdamPaintings",
                           "select p/title "
                           "from culture/museum m, m/painting p "
                           "where m/address contains \"Amsterdam\"");
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].var, "p");
  ASSERT_EQ(q.select[0].path.steps.size(), 1u);
  EXPECT_EQ(q.select[0].path.steps[0].tag, "title");

  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_EQ(q.from[0].var, "m");
  EXPECT_EQ(q.from[0].domain, "culture");
  EXPECT_TRUE(q.from[0].path.steps[0].descendant);
  EXPECT_EQ(q.from[1].var, "p");
  EXPECT_EQ(q.from[1].source_var, "m");

  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].var, "m");
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kContains);
  EXPECT_EQ(q.where[0].value, "Amsterdam");
}

TEST(QueryParseTest, SelfBindingAndDescendant) {
  Query q = MustParseQuery("Q", "select X from self//Member X");
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_TRUE(q.from[0].from_self);
  EXPECT_TRUE(q.from[0].path.steps[0].descendant);
}

TEST(QueryParseTest, EqualsPredicateAndConjunction) {
  Query q = MustParseQuery(
      "Q",
      "select m from any/museum m "
      "where m/city = \"Paris\" and m/name contains \"art\"");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kEquals);
  EXPECT_EQ(q.where[1].kind, Predicate::Kind::kContains);
  EXPECT_EQ(q.from[0].domain, "");  // `any` = all documents.
}

TEST(QueryParseTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("Q", "from x y").ok());
  EXPECT_FALSE(ParseQuery("Q", "select").ok());
  EXPECT_FALSE(ParseQuery("Q", "select a where b ~ c").ok());
  EXPECT_FALSE(ParseQuery("Q", "select a from d/x m trailing junk !").ok());
  EXPECT_FALSE(ParseQuery("Q", "select a where x contains \"unterminated").ok());
}

// ------------------------------------------------------------- Evaluation --

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    classifier_.AddRule({"culture", "", "museums", ""});
    warehouse_ = std::make_unique<warehouse::Warehouse>(&classifier_);
    warehouse_->Ingest(
        {"http://art/ams.xml",
         "<museums>"
         "<museum><name>Rijks</name><address>Amsterdam</address>"
         "<painting><title>NightWatch</title></painting>"
         "<painting><title>Milkmaid</title></painting></museum>"
         "<museum><name>Louvre</name><address>Paris</address>"
         "<painting><title>MonaLisa</title></painting></museum>"
         "</museums>"},
        1);
    engine_ = std::make_unique<QueryEngine>(warehouse_.get());
  }

  warehouse::DomainClassifier classifier_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, JoinWithContainsFilter) {
  Query q = MustParseQuery("AmsterdamPaintings",
                           "select p/title "
                           "from culture/museum m, m/painting p "
                           "where m/address contains \"amsterdam\"");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->name(), "AmsterdamPaintings");
  ASSERT_EQ((*result)->child_count(), 2u);
  EXPECT_EQ((*result)->child(0)->TextContent(), "NightWatch");
  EXPECT_EQ((*result)->child(1)->TextContent(), "Milkmaid");
}

TEST_F(QueryEngineTest, EqualsFilter) {
  Query q = MustParseQuery("ParisMuseums",
                           "select m/name from culture/museum m "
                           "where m/address = \"Paris\"");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->child_count(), 1u);
  EXPECT_EQ((*result)->child(0)->TextContent(), "Louvre");
}

TEST_F(QueryEngineTest, EmptyResultIsEmptyElement) {
  Query q = MustParseQuery("None",
                           "select m from culture/museum m "
                           "where m/address contains \"Tokyo\"");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->child_count(), 0u);
}

TEST_F(QueryEngineTest, UnknownDomainYieldsNothing) {
  Query q = MustParseQuery("Q", "select m from sports/team m");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->child_count(), 0u);
}

TEST_F(QueryEngineTest, EvaluateOnBindsSelf) {
  auto doc = xml::ParseFragment(
      "<Members><Member><name>a</name></Member>"
      "<Member><name>b</name></Member></Members>");
  ASSERT_TRUE(doc.ok());
  Query q = MustParseQuery("Q", "select X from self//Member X");
  auto result = engine_->EvaluateOn(q, **doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->child_count(), 2u);
}

TEST_F(QueryEngineTest, SelfQueryWithoutContextFails) {
  Query q = MustParseQuery("Q", "select X from self//Member X");
  EXPECT_TRUE(engine_->Evaluate(q).status().IsInvalidArgument());
}

TEST_F(QueryEngineTest, SelectUnboundVariableFails) {
  Query q = MustParseQuery("Q", "select z from culture/museum m");
  EXPECT_TRUE(engine_->Evaluate(q).status().IsInvalidArgument());
}

TEST_F(QueryEngineTest, WildcardSteps) {
  Query q = MustParseQuery("All", "select x from culture/museum m, m/* x");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Each museum has name + address + paintings: 2+2+1 children... count:
  // Rijks: name, address, 2 paintings = 4; Louvre: 3. Total 7.
  EXPECT_EQ((*result)->child_count(), 7u);
}

TEST_F(QueryEngineTest, AttributePredicates) {
  warehouse_->Ingest(
      {"http://art/tagged.xml",
       "<museums><museum id=\"m1\"><name>Tate</name>"
       "<painting year=\"1642\"><title>X</title></painting></museum>"
       "</museums>"},
      2);
  Query q = MustParseQuery(
      "ById", "select m/name from culture/museum m where m/@id = \"m1\"");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->child_count(), 1u);
  EXPECT_EQ((*result)->child(0)->TextContent(), "Tate");

  Query q2 = MustParseQuery(
      "ByYear",
      "select p/title from culture//painting p where p/@year contains \"16\"");
  auto result2 = engine_->Evaluate(q2);
  ASSERT_TRUE(result2.ok());
  ASSERT_EQ((*result2)->child_count(), 1u);
  EXPECT_EQ((*result2)->child(0)->TextContent(), "X");
}

TEST(QueryParseTest, AttributePathParsed) {
  Query q = MustParseQuery("Q",
                           "select m from any/museum m where m/@id = \"5\"");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].attribute, "id");
  EXPECT_TRUE(q.where[0].path.steps.empty());
}

TEST_F(QueryEngineTest, SelectSelfClonesTheContextDocument) {
  auto doc = Frag("<Members><Member/></Members>");
  Query q = MustParseQuery("Wrap", "select self");
  auto result = engine_->EvaluateOn(q, *doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->child_count(), 1u);
  EXPECT_EQ((*result)->child(0)->name(), "Members");
}

TEST_F(QueryEngineTest, CountAggregate) {
  Query q = MustParseQuery("PaintingCount",
                           "select count(p) from culture//painting p");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->child_count(), 1u);
  const xml::Node* count = (*result)->child(0);
  EXPECT_EQ(count->name(), "count");
  EXPECT_EQ(count->TextContent(), "3");
}

TEST_F(QueryEngineTest, CountMixedWithProjection) {
  Query q = MustParseQuery(
      "Q", "select m/name, count(m/painting) from culture/museum m");
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Two museum names + one total count element (2+1 paintings).
  ASSERT_EQ((*result)->child_count(), 3u);
  EXPECT_EQ((*result)->child(2)->name(), "count");
  EXPECT_EQ((*result)->child(2)->TextContent(), "3");
}

TEST(DeltaTrackerTest, CountChangesFlowThroughDeltaMode) {
  DeltaTracker tracker;
  tracker.Update(Frag("<Q><count of=\"p\">3</count></Q>"));
  auto unchanged = tracker.Update(Frag("<Q><count of=\"p\">3</count></Q>"));
  EXPECT_EQ(unchanged, nullptr);
  auto changed = tracker.Update(Frag("<Q><count of=\"p\">4</count></Q>"));
  ASSERT_NE(changed, nullptr);
  EXPECT_EQ(changed->name(), "Q-delta");
}

TEST(EvalPathTest, ChildVsDescendantSteps) {
  auto doc = xml::ParseFragment("<a><b><c/><b><c/></b></b><c/></a>");
  ASSERT_TRUE(doc.ok());
  PathExpr child_path{{PathStep{"c", false}}};
  EXPECT_EQ(EvalPath(doc->get(), child_path).size(), 1u);
  PathExpr desc_path{{PathStep{"c", true}}};
  EXPECT_EQ(EvalPath(doc->get(), desc_path).size(), 3u);
  PathExpr nested{{PathStep{"b", false}, PathStep{"b", false},
                   PathStep{"c", false}}};
  EXPECT_EQ(EvalPath(doc->get(), nested).size(), 1u);
}

// ----------------------------------------------------------- DeltaTracker --

TEST(DeltaTrackerTest, FirstEvaluationReturnsFullResult) {
  DeltaTracker tracker;
  auto r1 = xml::ParseFragment("<Q><t>a</t></Q>");
  auto out = tracker.Update(std::move(*r1));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->name(), "Q");
  EXPECT_EQ(out->child_count(), 1u);
}

TEST(DeltaTrackerTest, UnchangedResultYieldsNull) {
  DeltaTracker tracker;
  tracker.Update(Frag("<Q><t>a</t></Q>"));
  auto out = tracker.Update(Frag("<Q><t>a</t></Q>"));
  EXPECT_EQ(out, nullptr);
}

TEST(DeltaTrackerTest, ChangeYieldsDeltaDocument) {
  DeltaTracker tracker;
  tracker.Update(Frag("<Q><t>a</t></Q>"));
  auto out = tracker.Update(
      Frag("<Q><t>a</t><t>b</t></Q>"));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->name(), "Q-delta");
  ASSERT_NE(out->FindChild("inserted"), nullptr);
}

TEST(DeltaTrackerTest, SequenceOfChangesEachDiffedAgainstLast) {
  DeltaTracker tracker;
  tracker.Update(Frag("<Q><t>a</t></Q>"));
  tracker.Update(Frag("<Q><t>b</t></Q>"));
  auto out = tracker.Update(Frag("<Q><t>b</t></Q>"));
  EXPECT_EQ(out, nullptr);  // Unchanged relative to the second version.
}

}  // namespace
}  // namespace xymon::query
