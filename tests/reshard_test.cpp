#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "crash_sweep.h"
#include "gate_env.h"
#include "src/common/hash.h"
#include "src/storage/env.h"
#include "src/storage/storage_hub.h"
#include "src/system/monitor.h"

// StorageHub topology tests (DESIGN.md §12): the manifest as the single
// source of truth for storage layout, reshard-on-reopen when the pipeline
// shard count changes, orphan-file sweeping, and the crash-atomicity of the
// whole reshard protocol (generation-named files + one manifest rename).

namespace xymon::testing {
namespace {

using storage::StorageHub;

constexpr char kDir[] = "mon";

/// From-scratch control build: a purely in-memory monitor subscribed with
/// exactly `monitor`'s recovered subscriptions, in recovery replay order.
std::optional<TreeShape> FreshShapeOf(const system::XylemeMonitor& monitor) {
  SimClock clock(1000);
  system::XylemeMonitor fresh(&clock);
  for (const std::string& name : monitor.manager().subscription_names()) {
    const std::string* text = monitor.manager().subscription_text(name);
    if (text == nullptr) return std::nullopt;
    if (!fresh.Subscribe(*text, "control@x").ok()) return std::nullopt;
  }
  return ShapeOf(fresh);
}

// ---------------------------------------------------------------------------
// Hub-level tests: a partitioned store with simple synthetic routing —
// plain keys hash to one partition, the "!all" key replicates to every
// partition and merges by max.

StorageHub::Options HubOptions(storage::Env* env, size_t partitions) {
  StorageHub::Options options;
  options.log.env = env;
  options.log.fsync_every_n = 1;
  options.partitioned_name = "wh";
  options.partitioned_path = "hub/wh";
  options.partitions = partitions;
  options.reshard.route = [](std::string_view key, size_t num_partitions) {
    std::vector<size_t> targets;
    if (key == "!all") {
      for (size_t i = 0; i < num_partitions; ++i) targets.push_back(i);
    } else {
      targets.push_back(static_cast<size_t>(Fnv1a(key) % num_partitions));
    }
    return targets;
  };
  options.reshard.merge = [](std::string_view,
                             const std::vector<std::string>& values) {
    return *std::max_element(values.begin(), values.end());
  };
  return options;
}

std::map<std::string, std::string> SeedData() {
  std::map<std::string, std::string> data;
  for (int i = 0; i < 40; ++i) {
    data["key" + std::to_string(i)] = "value" + std::to_string(i);
  }
  return data;
}

/// Writes the seed data into a fresh N-way hub (placing each key on the
/// partition the route hook owns, as the warehouse does).
void SeedHub(storage::Env* env, size_t partitions) {
  auto options = HubOptions(env, partitions);
  auto hub = StorageHub::Open(options);
  ASSERT_TRUE(hub.ok()) << hub.status().message();
  for (const auto& [key, value] : SeedData()) {
    size_t target = options.reshard.route(key, partitions)[0];
    ASSERT_TRUE((*hub)->partition(target)->Put(key, value).ok());
  }
  for (size_t i = 0; i < partitions; ++i) {
    ASSERT_TRUE((*hub)->partition(i)->Put("!all", "shared7").ok());
  }
  ASSERT_TRUE((*hub)->CheckpointAll().ok());
}

/// Every key present exactly on its routed partition, the replicated key on
/// every partition, nothing else.
void ExpectHubContents(StorageHub* hub) {
  auto options = HubOptions(nullptr, hub->partition_count());
  std::map<std::string, std::string> expected = SeedData();
  for (size_t i = 0; i < hub->partition_count(); ++i) {
    auto shared = hub->partition(i)->Get("!all");
    ASSERT_TRUE(shared.has_value()) << "partition " << i;
    EXPECT_EQ(*shared, "shared7");
  }
  std::map<std::string, std::string> found;
  for (size_t i = 0; i < hub->partition_count(); ++i) {
    for (const auto& [key, value] : hub->partition(i)->data()) {
      if (key == "!all") continue;
      EXPECT_EQ(options.reshard.route(key, hub->partition_count())[0], i)
          << "key " << key << " on the wrong partition";
      EXPECT_TRUE(found.emplace(key, value).second)
          << "key " << key << " duplicated across partitions";
    }
  }
  EXPECT_EQ(found, expected);
}

TEST(StorageHubTest, ManifestRoundTripsLayoutAndEpoch) {
  storage::MemEnv env;
  SeedHub(&env, 4);

  auto hub = StorageHub::Open(HubOptions(&env, 4));
  ASSERT_TRUE(hub.ok()) << hub.status().message();
  EXPECT_EQ((*hub)->partition_count(), 4u);
  EXPECT_EQ((*hub)->generation(), 0u);
  EXPECT_FALSE((*hub)->resharded_on_open());
  EXPECT_EQ((*hub)->last_committed_epoch(), 1u);  // SeedHub's CheckpointAll.

  // Coordinated checkpoint: epoch commits only when told to.
  uint64_t epoch = (*hub)->BeginEpoch();
  EXPECT_EQ(epoch, 2u);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE((*hub)->partition(i)->Checkpoint().ok());
  }
  ASSERT_TRUE((*hub)->CommitEpoch(epoch).ok());
  EXPECT_EQ((*hub)->last_committed_epoch(), 2u);

  hub->reset();
  auto reopened = StorageHub::Open(HubOptions(&env, 4));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ((*reopened)->last_committed_epoch(), 2u);
  ExpectHubContents(reopened->get());
}

TEST(StorageHubTest, StaleEpochCommitIsIgnored) {
  storage::MemEnv env;
  auto hub = StorageHub::Open(HubOptions(&env, 2));
  ASSERT_TRUE(hub.ok());
  uint64_t first = (*hub)->BeginEpoch();
  uint64_t second = (*hub)->BeginEpoch();
  ASSERT_TRUE((*hub)->CommitEpoch(second).ok());
  ASSERT_TRUE((*hub)->CommitEpoch(first).ok());  // no-op, not a regression
  EXPECT_EQ((*hub)->last_committed_epoch(), second);
}

TEST(StorageHubTest, CorruptManifestIsCorruptionNotALayout) {
  storage::MemEnv env;
  SeedHub(&env, 4);

  auto content = [&] {
    auto file = env.NewSequentialFile("hub/wh.manifest");
    EXPECT_TRUE(file.ok());
    std::string text;
    char buf[4096];
    for (;;) {
      auto n = (*file)->Read(sizeof(buf), buf);
      EXPECT_TRUE(n.ok());
      if (*n == 0) break;
      text.append(buf, *n);
    }
    return text;
  }();
  ASSERT_NE(content.find("partitions 4"), std::string::npos);

  // Flip the partition count without fixing the CRC: the hub must refuse
  // the manifest rather than trust a damaged layout.
  std::string bad = content;
  bad.replace(bad.find("partitions 4"), 12, "partitions 9");
  auto file = env.NewWritableFile("hub/wh.manifest", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(bad).ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto hub = StorageHub::Open(HubOptions(&env, 4));
  ASSERT_FALSE(hub.ok());
  EXPECT_EQ(hub.status().code(), StatusCode::kCorruption);
}

TEST(StorageHubTest, ReshardMovesEveryKeyAndMergesReplicas) {
  storage::MemEnv env;
  SeedHub(&env, 4);
  for (size_t new_count : {2u, 8u, 3u, 1u}) {
    SCOPED_TRACE("reshard to " + std::to_string(new_count));
    auto hub = StorageHub::Open(HubOptions(&env, new_count));
    ASSERT_TRUE(hub.ok()) << hub.status().message();
    EXPECT_EQ((*hub)->partition_count(), new_count);
    EXPECT_TRUE((*hub)->resharded_on_open());
    ExpectHubContents(hub->get());
  }
}

TEST(StorageHubTest, OrphanScanSweepsStaleLayoutsOnly) {
  storage::MemEnv env;
  SeedHub(&env, 4);

  auto plant = [&env](const std::string& path) {
    auto file = env.NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("stale").ok());
    ASSERT_TRUE((*file)->Close().ok());
  };
  // Leftovers of hypothetical interrupted reshards and dead layouts...
  plant("hub/wh.s9");
  plant("hub/wh.g3.s1");
  plant("hub/wh.g2.ckpt");
  plant("hub/wh.s5.ckpt.tmp");
  // ...and innocent bystanders the scan must not touch.
  plant("hub/whale");
  plant("hub/other.s1");

  auto hub = StorageHub::Open(HubOptions(&env, 4));
  ASSERT_TRUE(hub.ok()) << hub.status().message();
  std::set<std::string> files;
  for (const std::string& f : env.ListFiles()) files.insert(f);
  EXPECT_FALSE(files.count("hub/wh.s9"));
  EXPECT_FALSE(files.count("hub/wh.g3.s1"));
  EXPECT_FALSE(files.count("hub/wh.g2.ckpt"));
  EXPECT_FALSE(files.count("hub/wh.s5.ckpt.tmp"));
  EXPECT_TRUE(files.count("hub/whale"));
  EXPECT_TRUE(files.count("hub/other.s1"));
  ExpectHubContents(hub->get());
}

TEST(StorageHubTest, ReopeningWithFewerPartitionsFoldsOrphanedFiles) {
  storage::MemEnv env;
  SeedHub(&env, 4);
  {
    auto hub = StorageHub::Open(HubOptions(&env, 2));
    ASSERT_TRUE(hub.ok()) << hub.status().message();
    EXPECT_EQ((*hub)->generation(), 1u);
    ExpectHubContents(hub->get());
  }
  // Every generation-0 partition file (indices 0–3) is gone; only the two
  // generation-1 partitions and the manifest remain.
  for (const std::string& file : env.ListFiles()) {
    if (file.rfind("hub/wh", 0) != 0) continue;
    EXPECT_TRUE(file == "hub/wh.manifest" || file.rfind("hub/wh.g1", 0) == 0)
        << "stale layout file survived the fold: " << file;
  }
}

// The reshard protocol is crash-atomic: kill the filesystem at every single
// I/O operation of a 4 → 2 reshard, reopen, and the store must come back
// complete — either still 4-way (manifest rename never happened) and then
// resharded cleanly, or already 2-way. Never a mix, never a lost key.
TEST(StorageHubTest, CrashSweepThroughReshardNeverLosesAKey) {
  // Count the ops one reshard takes.
  uint64_t reshard_ops = 0;
  {
    storage::MemEnv disk;
    SeedHub(&disk, 4);
    storage::FaultyEnv faulty(&disk);  // Disarmed: pure op counting.
    auto hub = StorageHub::Open(HubOptions(&faulty, 2));
    ASSERT_TRUE(hub.ok()) << hub.status().message();
    reshard_ops = faulty.op_count();
  }
  ASSERT_GT(reshard_ops, 10u);

  for (uint64_t crash_at = 1; crash_at <= reshard_ops; ++crash_at) {
    SCOPED_TRACE("crash at reshard I/O op " + std::to_string(crash_at));
    storage::MemEnv disk;
    SeedHub(&disk, 4);
    if (::testing::Test::HasFatalFailure()) return;
    storage::FaultyEnv faulty(&disk);
    faulty.CrashAtOp(crash_at);
    auto crashed = StorageHub::Open(HubOptions(&faulty, 2));
    ASSERT_FALSE(crashed.ok());
    ASSERT_TRUE(faulty.crashed());

    disk.Reboot();
    auto recovered = StorageHub::Open(HubOptions(&disk, 2));
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    EXPECT_EQ((*recovered)->partition_count(), 2u);
    ExpectHubContents(recovered->get());
  }
}

TEST(StorageHubTest, AutoCheckpointBoundAppliesToFlatStoresToo) {
  storage::MemEnv env;
  StorageHub::Options options;
  options.log.env = &env;
  options.auto_checkpoint_bytes = 4096;
  options.stores.push_back({"subs", "hub/subs"});
  auto hub = StorageHub::Open(options);
  ASSERT_TRUE(hub.ok()) << hub.status().message();

  // Churn one key far past the threshold: the flat store's log must stay
  // bounded — the hoisted bound, previously warehouse-only.
  storage::PersistentMap* store = (*hub)->store("subs");
  ASSERT_NE(store, nullptr);
  std::string value(128, 'v');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store->Put("key", value + std::to_string(i)).ok());
  }
  auto size = env.GetFileSize("hub/subs");
  ASSERT_TRUE(size.ok());
  EXPECT_LT(*size, 8192u);
  EXPECT_EQ(store->Get("key"), value + "999");
}

// ---------------------------------------------------------------------------
// Monitor-level tests: the full system resharding its warehouse between
// runs of the seeded crash-sweep workload.

struct SplitRunResult {
  std::vector<std::pair<std::string, std::string>> mail;  // (to, body)
  uint64_t documents = 0;
  std::optional<TreeShape> rebuilt_shape;
  std::optional<TreeShape> fresh_shape;
};

/// Phase 1 on `shards_before` shards, restart, phase 2 on `shards_after`.
/// The workload is fixed and seeded; the returned mail spans both phases.
SplitRunResult RunSplitWorkload(size_t shards_before, size_t shards_after,
                                storage::MemEnv* env) {
  SplitRunResult out;
  SimClock clock(1000);
  auto options = SweepOptions(kDir, env);

  options.num_shards = shards_before;
  {
    auto monitor = system::XylemeMonitor::Open(&clock, options);
    EXPECT_TRUE(monitor.ok()) << monitor.status().message();
    if (!monitor.ok()) return out;
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(
          (*monitor)->Subscribe(SweepSubText(i), "u" + std::to_string(i) + "@x")
              .ok());
    }
    for (int round = 1; round <= 2; ++round) {
      for (int j = 0; j < 12; ++j) {
        (*monitor)->ProcessFetch(SweepUrl(j), SweepBody(j, round));
      }
      clock.Advance(kDay);
      (*monitor)->Tick();
    }
    EXPECT_TRUE((*monitor)->CheckpointStorage().ok());
    for (const reporter::Email& email : (*monitor)->outbox().sent()) {
      out.mail.emplace_back(email.to, email.body);
    }
  }

  options.num_shards = shards_after;
  auto monitor = system::XylemeMonitor::Open(&clock, options);
  EXPECT_TRUE(monitor.ok()) << monitor.status().message();
  if (!monitor.ok()) return out;
  for (int round = 3; round <= 4; ++round) {
    for (int j = 0; j < 12; ++j) {
      (*monitor)->ProcessFetch(SweepUrl(j), SweepBody(j, round));
    }
    clock.Advance(kDay);
    (*monitor)->Tick();
  }
  for (const reporter::Email& email : (*monitor)->outbox().sent()) {
    out.mail.emplace_back(email.to, email.body);
  }
  out.documents = (*monitor)->pipeline().total_document_count();
  out.rebuilt_shape = ShapeOf(**monitor);
  out.fresh_shape = FreshShapeOf(**monitor);
  return out;
}

// The acceptance sweep: reopen an N-shard store as M shards — growing,
// shrinking, prime counts — and the delivered reports must be bit-for-bit
// the 1 → 1 control's, with the MQP hash tree rebuilt identically to a
// from-scratch build.
TEST(MonitorReshardTest, SeededShardSweepDeliversIdenticalReports) {
  storage::MemEnv control_env;
  SplitRunResult control = RunSplitWorkload(1, 1, &control_env);
  ASSERT_FALSE(control.mail.empty());
  ASSERT_GT(control.documents, 0u);

  const std::pair<size_t, size_t> sweep[] = {
      {1, 2}, {2, 4}, {4, 1}, {4, 8}, {2, 3}, {8, 4}, {4, 3}};
  for (const auto& [before, after] : sweep) {
    SCOPED_TRACE("reshard " + std::to_string(before) + " -> " +
                 std::to_string(after));
    storage::MemEnv env;
    SplitRunResult run = RunSplitWorkload(before, after, &env);
    EXPECT_EQ(run.mail, control.mail);
    EXPECT_EQ(run.documents, control.documents);
    ASSERT_TRUE(run.rebuilt_shape.has_value());
    ASSERT_TRUE(run.fresh_shape.has_value());
    EXPECT_TRUE(*run.rebuilt_shape == *run.fresh_shape)
        << "rebuilt MQP tree diverged from a from-scratch build";
  }
}

TEST(MonitorReshardTest, ShrinkingShardCountFoldsPartitionFiles) {
  storage::MemEnv env;
  SimClock clock(1000);
  auto options = SweepOptions(kDir, &env);
  options.num_shards = 4;
  {
    auto monitor = system::XylemeMonitor::Open(&clock, options);
    ASSERT_TRUE(monitor.ok()) << monitor.status().message();
    for (int j = 0; j < 12; ++j) {
      (*monitor)->ProcessFetch(SweepUrl(j), SweepBody(j, 1));
    }
    ASSERT_TRUE((*monitor)->CheckpointStorage().ok());
  }

  options.num_shards = 2;
  auto monitor = system::XylemeMonitor::Open(&clock, options);
  ASSERT_TRUE(monitor.ok()) << monitor.status().message();
  ASSERT_NE((*monitor)->storage_hub(), nullptr);
  EXPECT_TRUE((*monitor)->storage_hub()->resharded_on_open());
  EXPECT_EQ((*monitor)->pipeline().total_document_count(), 12u);

  // The four generation-0 partition files are folded into two
  // generation-1 ones; no `wh.s<i>` legacy partition survives.
  const std::string base = std::string(kDir) + "/wh";
  for (const std::string& file : env.ListFiles()) {
    if (file.rfind(base, 0) != 0) continue;
    EXPECT_TRUE(file == base + ".manifest" ||
                file.rfind(base + ".g1", 0) == 0)
        << "stale partition file survived the fold: " << file;
  }
}

// Crash-during-reshard at the full-monitor level: seed a 4-shard store,
// crash the 2-shard reopen at a spread of I/O ops, and recovery must come
// back complete with every ingested document.
TEST(MonitorReshardTest, CrashDuringMonitorReshardRecovers) {
  auto seed = [](storage::MemEnv* env) {
    SimClock clock(1000);
    auto options = SweepOptions(kDir, env);
    options.num_shards = 4;
    auto monitor = system::XylemeMonitor::Open(&clock, options);
    ASSERT_TRUE(monitor.ok()) << monitor.status().message();
    ASSERT_TRUE((*monitor)->Subscribe(SweepSubText(0), "u0@x").ok());
    for (int j = 0; j < 8; ++j) {
      (*monitor)->ProcessFetch(SweepUrl(j), SweepBody(j, 1));
    }
    ASSERT_TRUE((*monitor)->CheckpointStorage().ok());
  };

  uint64_t reshard_ops = 0;
  {
    storage::MemEnv disk;
    seed(&disk);
    storage::FaultyEnv faulty(&disk);
    SimClock clock(5000);
    auto options = SweepOptions(kDir, &faulty);
    options.num_shards = 2;
    auto monitor = system::XylemeMonitor::Open(&clock, options);
    ASSERT_TRUE(monitor.ok()) << monitor.status().message();
    reshard_ops = faulty.op_count();
  }
  ASSERT_GT(reshard_ops, 10u);

  for (uint64_t crash_at = 1; crash_at <= reshard_ops; crash_at += 3) {
    SCOPED_TRACE("crash at reopen I/O op " + std::to_string(crash_at));
    storage::MemEnv disk;
    seed(&disk);
    if (::testing::Test::HasFatalFailure()) return;
    storage::FaultyEnv faulty(&disk);
    faulty.CrashAtOp(crash_at);
    SimClock clock(5000);
    auto options = SweepOptions(kDir, &faulty);
    options.num_shards = 2;
    auto crashed = system::XylemeMonitor::Open(&clock, options);
    EXPECT_FALSE(crashed.ok());

    disk.Reboot();
    SimClock clock2(5000);
    options = SweepOptions(kDir, &disk);
    options.num_shards = 2;
    auto recovered = system::XylemeMonitor::Open(&clock2, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    EXPECT_EQ((*recovered)->pipeline().total_document_count(), 8u);
    std::set<std::string> subs;
    for (const std::string& name :
         (*recovered)->manager().subscription_names()) {
      subs.insert(name);
    }
    EXPECT_TRUE(subs.count("Sub0"));
  }
}

// A checkpoint stuck mid-I/O on one shard must not wedge a caller that asked
// for a bounded wait: WaitFor reports DeadlineExceeded while the marker stays
// queued, and a later Wait still collects the checkpoint once it completes.
TEST(MonitorReshardTest, CheckpointTicketWaitForBoundsTheWait) {
  GateEnv env;
  SimClock clock(1000);
  auto options = SweepOptions(kDir, &env);
  options.num_shards = 4;
  auto monitor = system::XylemeMonitor::Open(&clock, options);
  ASSERT_TRUE(monitor.ok()) << monitor.status().message();
  for (int j = 0; j < 12; ++j) {
    (*monitor)->ProcessFetch(SweepUrl(j), SweepBody(j, 1));
  }

  // Park shard 0's partition checkpoint inside its first temp-file write.
  env.ArmGate(std::string(kDir) + "/wh.ckpt.tmp");
  auto ticket = (*monitor)->pipeline().CheckpointWarehousesAsync();
  env.WaitUntilEntered();

  Status bounded = ticket->WaitFor(/*timeout_ms=*/50);
  EXPECT_TRUE(bounded.IsDeadlineExceeded()) << bounded.ToString();

  env.ReleaseGate();
  EXPECT_TRUE(ticket->Wait().ok());
  // The bounded wait gave up without consuming the completion: a second
  // bounded wait on the now-finished ticket succeeds immediately.
  EXPECT_TRUE(ticket->WaitFor(/*timeout_ms=*/1).ok());
}

}  // namespace
}  // namespace xymon::testing
