// Self-healing pipeline tests (DESIGN.md §13): stage-level fault injection
// through the FaultyStage decorators, containment (a stage throw fails one
// document, never the process), the poison tracker, batch deadlines with the
// shard watchdog, bounded-queue backpressure, and shard
// restart-from-storage.
//
// The acceptance sweep faults every stage-call point of a fixed seeded
// workload — at 1 and at 4 shards — and requires: no crash, no barrier
// deadlock, no acked subscription lost, and bit-for-bit report equality for
// the non-faulted documents.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gate_env.h"
#include "time_scale.h"
#include "src/storage/env.h"
#include "src/system/monitor.h"
#include "src/system/stage_faults.h"
#include "src/webstub/crawler.h"

namespace xymon::system {
namespace {

// Immediate-report subscription only: every sent e-mail carries exactly one
// notification naming one URL, so filtering a faulted URL out of a mail
// stream is a substring test.
constexpr char kWatchAll[] = R"(
subscription WatchAll
monitoring
select default
where URL extends "http://w" and modified self
report when immediate
)";

/// Small seeded workload: `rounds` rounds over `urls` pages across 5 hosts
/// (so 4-shard runs spread the flow), bodies drifting version to version.
std::vector<std::vector<webstub::FetchedDoc>> MakeWorkload(int rounds,
                                                           int urls) {
  std::vector<std::vector<webstub::FetchedDoc>> batches;
  for (int r = 1; r <= rounds; ++r) {
    std::vector<webstub::FetchedDoc> batch;
    for (int u = 0; u < urls; ++u) {
      webstub::FetchedDoc doc;
      doc.url = "http://w" + std::to_string(u % 5) + ".example.org/doc" +
                std::to_string(u) + ".xml";
      doc.body = "<Catalog><Item>widget" +
                 std::to_string((u * 7 + r * 3) % 11) + "</Item><rev>" +
                 std::to_string(r) + "</rev></Catalog>";
      batch.push_back(std::move(doc));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct RunResult {
  XylemeMonitor::Stats stats;
  PipelineStats pipeline;
  std::vector<std::string> mail;  // bodies, in sent order
  size_t subscriptions = 0;
  bool probe_notified = false;
};

/// Drives the workload through a fresh monitor with `injector` installed
/// (nullptr = no decorators at all), then probes liveness: a modified page
/// after the workload must still notify — the "no acked subscription lost"
/// check.
RunResult RunWorkload(size_t num_shards, StageFaultInjector* injector,
                      const std::vector<std::vector<webstub::FetchedDoc>>&
                          batches) {
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = num_shards;
  options.stage_faults = injector;
  XylemeMonitor monitor(&clock, options);
  EXPECT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  for (const auto& batch : batches) {
    monitor.ProcessFetchBatch(batch);
    clock.Advance(kHour);
    monitor.Tick();
  }

  RunResult out;
  out.stats = monitor.stats();
  out.pipeline = monitor.pipeline_stats();
  for (const reporter::Email& email : monitor.outbox().sent()) {
    out.mail.push_back(email.body);
  }
  out.subscriptions = monitor.manager().subscription_count();

  // Probe that detection still works end to end (the sweep never arms a
  // fault on the probe URL — see workload_calls in the sweep test).
  uint64_t before = monitor.stats().notifications;
  monitor.ProcessFetch("http://w0.example.org/probe.xml", "<p>v1</p>");
  monitor.ProcessFetch("http://w0.example.org/probe.xml", "<p>v2</p>");
  out.probe_notified = monitor.stats().notifications > before;
  return out;
}

/// Mail bodies not mentioning `url` — the reports of the non-faulted
/// documents.
std::vector<std::string> WithoutUrl(const std::vector<std::string>& mail,
                                    const std::string& url) {
  std::vector<std::string> out;
  for (const std::string& body : mail) {
    if (body.find(url) == std::string::npos) out.push_back(body);
  }
  return out;
}

// ------------------------------------------------------- acceptance sweep --

TEST(StageFaultSweepTest, EveryCallPointFaultedNeverLosesTheRest) {
  auto batches = MakeWorkload(/*rounds=*/3, /*urls=*/6);

  // Enumerate the clean run's stage-call points (record mode), and pin down
  // that the *set* of call points is shard-count invariant.
  // The record run fetches the probe too; drop its call points — the probe
  // is measurement, not workload (faulting it would fault the very document
  // the probe checks).
  auto workload_calls = [](StageFaultInjector& rec) {
    auto calls = rec.recorded_calls();
    calls.erase(std::remove_if(calls.begin(), calls.end(),
                               [](const StageFaultSpec& s) {
                                 return s.url.find("probe.xml") !=
                                        std::string::npos;
                               }),
                calls.end());
    std::sort(calls.begin(), calls.end(),
              [](const StageFaultSpec& a, const StageFaultSpec& b) {
                return std::tie(a.stage, a.url, a.nth) <
                       std::tie(b.stage, b.url, b.nth);
              });
    return calls;
  };
  StageFaultInjector recorder;
  recorder.set_recording(true);
  RunResult clean1 = RunWorkload(1, &recorder, batches);
  auto call_points = workload_calls(recorder);
  recorder.Reset();
  RunResult clean4 = RunWorkload(4, &recorder, batches);
  auto call_points4 = workload_calls(recorder);
  ASSERT_EQ(call_points, call_points4);
  ASSERT_GT(call_points.size(), 30u);  // ingest+detect+match actually ran
  ASSERT_FALSE(clean1.mail.empty());
  ASSERT_EQ(clean1.mail, clean4.mail);

  // Fault every call point in turn — kThrow everywhere, kCorrupt on every
  // third point for variety — at both shard counts. Each faulted run must
  // keep every non-faulted document's report bit-for-bit and keep the
  // subscription live.
  for (size_t ci = 0; ci < call_points.size(); ++ci) {
    StageFaultSpec spec = call_points[ci];
    spec.kind = ci % 3 == 2 ? StageFaultKind::kCorrupt : StageFaultKind::kThrow;
    SCOPED_TRACE(std::string(StageKindName(spec.stage)) + " #" +
                 std::to_string(spec.nth) + " of " + spec.url + " (" +
                 StageFaultKindName(spec.kind) + ")");
    for (size_t shards : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(std::to_string(shards) + " shard(s)");
      StageFaultInjector injector(StageFaultPlan{{spec}});
      RunResult run = RunWorkload(shards, &injector, batches);

      EXPECT_EQ(injector.faults_fired(), 1u);
      if (spec.kind == StageFaultKind::kThrow) {
        EXPECT_EQ(run.stats.failed_documents, 1u);
        EXPECT_EQ(run.pipeline.stage_failures, 1u);
      } else {
        // Corruption is silent at the pipeline level: an ingest corruption
        // surfaces as a degraded document, detect/match corruptions as a
        // missing notification — never as a process death.
        EXPECT_EQ(run.stats.failed_documents, 0u);
      }
      EXPECT_EQ(run.subscriptions, 1u);
      EXPECT_TRUE(run.probe_notified);
      EXPECT_EQ(WithoutUrl(run.mail, spec.url),
                WithoutUrl(clean1.mail, spec.url));
    }
  }
}

// ------------------------------------------------------------ containment --

TEST(ContainmentTest, ThrownStageFailsOnlyItsDocument) {
  const std::string faulty = "http://w1.example.org/bad.xml";
  StageFaultInjector injector(
      StageFaultPlan{{{StageKind::kDetect, faulty, 2, StageFaultKind::kThrow}}});
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.stage_faults = &injector;
  options.health_recovery_batches = 2;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  // First versions are `new`, not `modified` — no notifications yet, and
  // detect call #1 for the faulty URL passes clean.
  monitor.ProcessFetch(faulty, "<p>v1</p>");
  monitor.ProcessFetch("http://w2.example.org/ok.xml", "<p>v1</p>");
  EXPECT_EQ(monitor.stats().notifications, 0u);

  // Detect call #2 throws: the faulted document fails contained; its
  // batch-mate still notifies.
  monitor.ProcessFetchBatch({{faulty, "<p>v2</p>"},
                             {"http://w2.example.org/ok.xml", "<p>v2</p>"}});
  EXPECT_EQ(monitor.stats().failed_documents, 1u);
  EXPECT_EQ(monitor.stats().notifications, 1u);
  PipelineStats ps = monitor.pipeline_stats();
  EXPECT_EQ(ps.stage_failures, 1u);
  ASSERT_EQ(ps.shard_status.size(), 1u);
  EXPECT_EQ(ps.shard_status[0].health, ShardHealth::kDegraded);

  // Clean batches recover the shard to healthy.
  monitor.ProcessFetch("http://w2.example.org/ok.xml", "<p>v3</p>");
  monitor.ProcessFetch("http://w2.example.org/ok.xml", "<p>v4</p>");
  EXPECT_EQ(monitor.pipeline_stats().shard_status[0].health,
            ShardHealth::kHealthy);

  // The faulted URL itself keeps working (nth=2 was the only armed call).
  monitor.ProcessFetch(faulty, "<p>v3</p>");
  EXPECT_EQ(monitor.stats().failed_documents, 1u);
  EXPECT_EQ(monitor.stats().notifications, 4u);
}

TEST(ContainmentTest, ContainmentOffRestoresDieOnThrow) {
  const std::string faulty = "http://w1.example.org/bad.xml";
  StageFaultInjector injector(
      StageFaultPlan{{{StageKind::kIngest, faulty, 1, StageFaultKind::kThrow}}});
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.stage_faults = &injector;
  options.fault_containment = false;
  XylemeMonitor monitor(&clock, options);
  // 1-shard pipelines run inline on the caller thread, so the uncontained
  // exception propagates out of ProcessFetch — the seed's behaviour.
  EXPECT_THROW(monitor.ProcessFetch(faulty, "<p>v1</p>"), std::runtime_error);
}

// --------------------------------------------------------- poison tracker --

TEST(PoisonTest, RepeatOffenderIsQuarantinedAndRestartClearsIt) {
  storage::MemEnv env;
  const std::string poison = "http://w3.example.org/poison.xml";
  StageFaultInjector injector(StageFaultPlan{
      {{StageKind::kDetect, poison, 1, StageFaultKind::kThrow},
       {StageKind::kDetect, poison, 2, StageFaultKind::kThrow}}});
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = 4;
  options.warehouse_path = "mon/wh";
  options.env = &env;
  options.stage_faults = &injector;
  options.max_stage_failures_per_url = 2;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.storage_status().ok())
      << monitor.storage_status().ToString();
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  monitor.ProcessFetch("http://w3.example.org/fine.xml", "<p>v1</p>");
  monitor.ProcessFetch(poison, "<p>v1</p>");  // contained failure 1
  monitor.ProcessFetch(poison, "<p>v2</p>");  // contained failure 2 -> poisoned
  PipelineStats ps = monitor.pipeline_stats();
  EXPECT_EQ(ps.stage_failures, 2u);
  EXPECT_EQ(ps.poisoned_urls, 1u);
  EXPECT_EQ(monitor.pipeline().poisoned_urls(),
            std::vector<std::string>{poison});

  // The third fetch is rejected at scatter — no stage ever sees it.
  monitor.ProcessFetch(poison, "<p>v3</p>");
  ps = monitor.pipeline_stats();
  EXPECT_EQ(ps.poison_rejections, 1u);
  EXPECT_EQ(ps.stage_failures, 2u);
  EXPECT_EQ(injector.faults_fired(), 2u);

  // The quarantine is operator-visible.
  std::string report = monitor.StatusReport();
  EXPECT_NE(report.find("<PoisonedUrl"), std::string::npos);
  EXPECT_NE(report.find(poison), std::string::npos);

  // Restarting the owning shard clears its poison verdicts and rebuilds the
  // warehouse from the partition: the document ingested before quarantine
  // survives, and the URL flows again.
  size_t owner = monitor.pipeline().ShardFor(poison);
  uint64_t docs_before = monitor.pipeline().total_document_count();
  ASSERT_TRUE(monitor.pipeline().RestartShard(owner).ok());
  EXPECT_EQ(monitor.pipeline().total_document_count(), docs_before);
  EXPECT_EQ(monitor.pipeline_stats().poisoned_urls, 0u);
  EXPECT_EQ(monitor.pipeline_stats().shard_restarts, 1u);

  uint64_t notifications = monitor.stats().notifications;
  monitor.ProcessFetch(poison, "<p>v4</p>");
  EXPECT_GT(monitor.stats().notifications, notifications);
}

TEST(PoisonTest, CleanPassResetsTheConsecutiveFailureCount) {
  const std::string flaky = "http://w1.example.org/flaky.xml";
  StageFaultInjector injector(StageFaultPlan{
      {{StageKind::kDetect, flaky, 1, StageFaultKind::kThrow},
       {StageKind::kDetect, flaky, 3, StageFaultKind::kThrow}}});
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.stage_faults = &injector;
  options.max_stage_failures_per_url = 2;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());

  monitor.ProcessFetch(flaky, "<p>v1</p>");  // fail (count 1)
  monitor.ProcessFetch(flaky, "<p>v2</p>");  // clean -> count reset
  monitor.ProcessFetch(flaky, "<p>v3</p>");  // fail (count 1 again)
  PipelineStats ps = monitor.pipeline_stats();
  EXPECT_EQ(ps.stage_failures, 2u);
  EXPECT_EQ(ps.poisoned_urls, 0u);  // never reached the cap of 2
  EXPECT_EQ(ps.poison_rejections, 0u);
}

// ------------------------------------------- watchdog + restart-from-storage

TEST(WatchdogTest, StuckShardIsQuarantinedRestartedAndRebuiltFromStorage) {
  auto batches = MakeWorkload(/*rounds=*/3, /*urls=*/10);
  const std::string stuck = batches[0][0].url;

  auto run = [&](StageFaultInjector* injector, storage::MemEnv* env,
                 std::vector<std::string>* round3_mail) {
    SimClock clock(1000);
    XylemeMonitor::Options options;
    options.num_shards = 4;
    options.warehouse_path = "mon/wh";
    options.env = env;
    options.stage_faults = injector;
    options.batch_deadline_ms = ScaledMs(500);  // XYMON_TEST_TIME_SCALE
    auto monitor = XylemeMonitor::Open(&clock, options);
    ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
    ASSERT_TRUE((*monitor)->Subscribe(kWatchAll, "all@example.org").ok());

    // Round 1: establish every document. Round 2: only the stuck URL's
    // shard-mates stay home — the watchdog verdict must name exactly one
    // shard.
    (*monitor)->ProcessFetchBatch(batches[0]);
    ASSERT_TRUE((*monitor)->CheckpointStorage().ok());
    size_t stuck_shard = (*monitor)->pipeline().ShardFor(stuck);
    std::vector<webstub::FetchedDoc> round2;
    for (const webstub::FetchedDoc& doc : batches[1]) {
      if (doc.url == stuck ||
          (*monitor)->pipeline().ShardFor(doc.url) != stuck_shard) {
        round2.push_back(doc);
      }
    }
    ASSERT_GT(round2.size(), 1u);
    (*monitor)->ProcessFetchBatch(round2);

    size_t sent_before = (*monitor)->outbox().sent().size();
    (*monitor)->ProcessFetchBatch(batches[2]);
    for (size_t i = sent_before; i < (*monitor)->outbox().sent().size();
         ++i) {
      round3_mail->push_back((*monitor)->outbox().sent()[i].body);
    }

    PipelineStats ps = (*monitor)->pipeline_stats();
    if (injector != nullptr) {
      // The deadline fired, the wedged shard was quarantined, auto-restart
      // rebuilt it from its partition, and the flow is healthy again.
      EXPECT_GE(ps.deadline_exceeded, 1u);
      EXPECT_EQ(ps.shard_restarts, 1u);
      EXPECT_TRUE((*monitor)->restart_status().ok())
          << (*monitor)->restart_status().ToString();
      std::string report = (*monitor)->StatusReport();
      EXPECT_NE(report.find("restarts=\"1\""), std::string::npos);
    } else {
      EXPECT_EQ(ps.deadline_exceeded, 0u);
      EXPECT_EQ(ps.shard_restarts, 0u);
    }
    for (const ShardStatus& ss : ps.shard_status) {
      EXPECT_EQ(ss.health, ShardHealth::kHealthy);
    }
    EXPECT_EQ((*monitor)->pipeline().total_document_count(), 10u);
  };

  // The stall outlives the deadline by a wide margin: the stage is wedged,
  // not slow. It sits at detect, after the ingest wrote through to the
  // partition — so the restarted shard recovers the stalled document's
  // version too, and round 3 diffs identically to the never-faulted run.
  // Both bounds stretch together under XYMON_TEST_TIME_SCALE, so the margin
  // survives sanitizer slowdowns.
  StageFaultInjector injector(StageFaultPlan{
      {{StageKind::kDetect, stuck, 2, StageFaultKind::kStall,
        ScaledMs(2500)}}});
  storage::MemEnv faulted_env;
  std::vector<std::string> faulted_round3;
  run(&injector, &faulted_env, &faulted_round3);
  if (::testing::Test::HasFatalFailure()) return;

  storage::MemEnv clean_env;
  std::vector<std::string> clean_round3;
  run(nullptr, &clean_env, &clean_round3);

  // Restart-from-storage acceptance: after the watchdog-triggered rebuild,
  // the next batch is bit-for-bit the never-faulted run's.
  ASSERT_FALSE(clean_round3.empty());
  EXPECT_EQ(faulted_round3, clean_round3);
}

// ----------------------------------------------------------- backpressure --

TEST(BackpressureTest, BoundedQueueDeliversUnboundedResultsBitForBit) {
  auto batches = MakeWorkload(/*rounds=*/2, /*urls=*/40);
  RunResult unbounded = RunWorkload(4, nullptr, batches);
  ASSERT_FALSE(unbounded.mail.empty());

  // A 40ms stall on the first document keeps its shard's worker busy while
  // the scatter keeps pushing that shard's remaining documents into a
  // 2-deep queue — the scatter must block (and be released), not grow the
  // queue or drop work. The stall delegates afterwards, so the results are
  // the unbounded run's exactly.
  StageFaultInjector injector(StageFaultPlan{
      {{StageKind::kIngest, batches[0][0].url, 1, StageFaultKind::kStall,
        40}}});
  SimClock clock(1000);
  XylemeMonitor::Options options;
  options.num_shards = 4;
  options.stage_faults = &injector;
  options.queue_high_water_limit = 2;
  XylemeMonitor monitor(&clock, options);
  ASSERT_TRUE(monitor.Subscribe(kWatchAll, "all@example.org").ok());
  for (const auto& batch : batches) {
    monitor.ProcessFetchBatch(batch);
    clock.Advance(kHour);
    monitor.Tick();
  }

  std::vector<std::string> mail;
  for (const reporter::Email& email : monitor.outbox().sent()) {
    mail.push_back(email.body);
  }
  EXPECT_EQ(mail, unbounded.mail);
  EXPECT_EQ(monitor.stats(), unbounded.stats);
  EXPECT_GE(monitor.pipeline_stats().backpressure_waits, 1u);
  EXPECT_EQ(monitor.stats().failed_documents, 0u);
}

}  // namespace
}  // namespace xymon::system
