#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/storage/log_store.h"
#include "src/storage/persistent_map.h"

namespace xymon::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("xymon_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

// ----------------------------------------------------------------- Crc32 --

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
  EXPECT_NE(Crc32("abc"), Crc32("abcd"));
}

// -------------------------------------------------------------- LogStore --

TEST_F(StorageTest, AppendAndReplay) {
  auto log = LogStore::Open(Path("log"));
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("one").ok());
  ASSERT_TRUE(log->Append("two").ok());
  ASSERT_TRUE(log->Append("").ok());  // Empty records allowed.

  std::vector<std::string> records;
  ASSERT_TRUE(
      log->Replay([&](std::string_view r) { records.emplace_back(r); }).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "two");
  EXPECT_EQ(records[2], "");
}

TEST_F(StorageTest, ReplaySurvivesReopen) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("persisted").ok());
  }
  auto log = LogStore::Open(Path("log"));
  int count = 0;
  ASSERT_TRUE(log->Replay([&](std::string_view r) {
                    EXPECT_EQ(r, "persisted");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(StorageTest, TornTailIsIgnored) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("good").ok());
  }
  // Simulate a torn write: half a record at the tail.
  {
    std::ofstream f(Path("log"), std::ios::binary | std::ios::app);
    uint32_t len = 100;
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write("partial", 7);
  }
  auto log = LogStore::Open(Path("log"));
  std::vector<std::string> records;
  Status st = log->Replay([&](std::string_view r) { records.emplace_back(r); });
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "good");
}

TEST_F(StorageTest, CorruptPayloadDetected) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("aaaaaaaa").ok());
    ASSERT_TRUE(log->Append("bbbbbbbb").ok());
  }
  {
    // Flip one payload byte of the first record (offset 8 = after framing).
    std::fstream f(Path("log"), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    f.put('X');
  }
  auto log = LogStore::Open(Path("log"));
  std::vector<std::string> records;
  (void)log->Replay([&](std::string_view r) { records.emplace_back(r); });
  // The corrupt record must not be delivered.
  for (const std::string& r : records) EXPECT_NE(r, "Xaaaaaaa");
}

TEST_F(StorageTest, TruncateEmptiesLog) {
  auto log = LogStore::Open(Path("log"));
  ASSERT_TRUE(log->Append("x").ok());
  ASSERT_TRUE(log->Truncate().ok());
  int count = 0;
  ASSERT_TRUE(log->Replay([&](std::string_view) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  // Still usable after truncation.
  ASSERT_TRUE(log->Append("y").ok());
  ASSERT_TRUE(log->Replay([&](std::string_view r) {
                    EXPECT_EQ(r, "y");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(StorageTest, FsyncedAppendSurvivesSimulatedCrash) {
  LogStore::Options options;
  options.fsync_every_n = 1;  // Every Append is on stable storage.
  auto log = LogStore::Open(Path("log"), options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("alpha").ok());
  ASSERT_TRUE(log->Append("beta").ok());

  // Simulated crash right after the flushed append: snapshot the on-disk
  // bytes while the writer is still open (no destructor/close runs — only
  // what Append itself pushed to the file counts), then recover from the
  // snapshot.
  ASSERT_TRUE(
      std::filesystem::copy_file(Path("log"), Path("after_crash")));
  auto recovered = LogStore::Open(Path("after_crash"));
  ASSERT_TRUE(recovered.ok());
  std::vector<std::string> records;
  ASSERT_TRUE(recovered
                  ->Replay([&](std::string_view r) { records.emplace_back(r); })
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "beta");
}

TEST_F(StorageTest, ExplicitSyncFlushesWithoutCadence) {
  auto log = LogStore::Open(Path("log"));  // fsync_every_n = 0.
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("one").ok());
  ASSERT_TRUE(log->Sync().ok());
  ASSERT_TRUE(std::filesystem::copy_file(Path("log"), Path("after_crash")));
  auto recovered = LogStore::Open(Path("after_crash"));
  ASSERT_TRUE(recovered.ok());
  int count = 0;
  ASSERT_TRUE(recovered
                  ->Replay([&](std::string_view r) {
                    EXPECT_EQ(r, "one");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

// --------------------------------------------------------- PersistentMap --

TEST_F(StorageTest, MapForwardsDurabilityOptions) {
  LogStore::Options options;
  options.fsync_every_n = 1;
  auto map = PersistentMap::Open(Path("map"), options);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put("k", "v").ok());
  ASSERT_TRUE(std::filesystem::copy_file(Path("map"), Path("map_crash")));
  auto recovered = PersistentMap::Open(Path("map_crash"));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("k"), std::optional<std::string>("v"));
}

TEST_F(StorageTest, MapPutGetDelete) {
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put("k1", "v1").ok());
  ASSERT_TRUE(map->Put("k2", "v2").ok());
  EXPECT_EQ(map->Get("k1"), "v1");
  EXPECT_TRUE(map->Contains("k2"));
  ASSERT_TRUE(map->Delete("k1").ok());
  EXPECT_EQ(map->Get("k1"), std::nullopt);
  EXPECT_EQ(map->size(), 1u);
}

TEST_F(StorageTest, MapOverwriteKeepsLatest) {
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map->Put("k", "old").ok());
  ASSERT_TRUE(map->Put("k", "new").ok());
  EXPECT_EQ(map->Get("k"), "new");
}

TEST_F(StorageTest, MapRecoversAfterReopen) {
  {
    auto map = PersistentMap::Open(Path("map"));
    ASSERT_TRUE(map->Put("a", "1").ok());
    ASSERT_TRUE(map->Put("b", "2").ok());
    ASSERT_TRUE(map->Delete("a").ok());
    ASSERT_TRUE(map->Put("c", "3").ok());
  }
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->size(), 2u);
  EXPECT_EQ(map->Get("a"), std::nullopt);
  EXPECT_EQ(map->Get("b"), "2");
  EXPECT_EQ(map->Get("c"), "3");
}

TEST_F(StorageTest, MapHandlesBinaryKeysAndValues) {
  auto map = PersistentMap::Open(Path("map"));
  std::string key("k\0ey", 4);
  std::string value("v\0al\n", 5);
  ASSERT_TRUE(map->Put(key, value).ok());
  EXPECT_EQ(map->Get(key), value);
}

TEST_F(StorageTest, CheckpointCompactsAndPreservesState) {
  {
    auto map = PersistentMap::Open(Path("map"));
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(map->Put("key", "v" + std::to_string(i)).ok());
    }
    size_t before = std::filesystem::file_size(Path("map"));
    ASSERT_TRUE(map->Checkpoint().ok());
    size_t after = std::filesystem::file_size(Path("map"));
    EXPECT_LT(after, before / 10);
  }
  auto map = PersistentMap::Open(Path("map"));
  EXPECT_EQ(map->Get("key"), "v99");
}


TEST_F(StorageTest, AutoCheckpointBoundsLogGrowth) {
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok());
  map->SetAutoCheckpoint(4096);
  // Churn one key far past the threshold: the log must stay bounded.
  std::string value(128, 'v');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(map->Put("key", value + std::to_string(i)).ok());
  }
  size_t size = std::filesystem::file_size(Path("map"));
  EXPECT_LT(size, 8192u);  // Threshold + one record, roughly.
  EXPECT_EQ(map->Get("key"), value + "999");
  // State still correct after reopen.
  auto reopened = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Get("key"), value + "999");
}

TEST_F(StorageTest, MapRecoversFromTornTail) {
  {
    auto map = PersistentMap::Open(Path("map"));
    ASSERT_TRUE(map->Put("stable", "yes").ok());
  }
  {
    std::ofstream f(Path("map"), std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00garbage", 11);
  }
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->Get("stable"), "yes");
}

}  // namespace
}  // namespace xymon::storage
