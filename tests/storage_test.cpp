#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/log_store.h"
#include "src/storage/persistent_map.h"

namespace xymon::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("xymon_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

// ----------------------------------------------------------------- Crc32 --

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
  EXPECT_NE(Crc32("abc"), Crc32("abcd"));
}

// -------------------------------------------------------------- LogStore --

TEST_F(StorageTest, AppendAndReplay) {
  auto log = LogStore::Open(Path("log"));
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("one").ok());
  ASSERT_TRUE(log->Append("two").ok());
  ASSERT_TRUE(log->Append("").ok());  // Empty records allowed.

  std::vector<std::string> records;
  ASSERT_TRUE(
      log->Replay([&](std::string_view r) { records.emplace_back(r); }).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "two");
  EXPECT_EQ(records[2], "");
}

TEST_F(StorageTest, ReplaySurvivesReopen) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("persisted").ok());
  }
  auto log = LogStore::Open(Path("log"));
  int count = 0;
  ASSERT_TRUE(log->Replay([&](std::string_view r) {
                    EXPECT_EQ(r, "persisted");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(StorageTest, TornTailIsIgnored) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("good").ok());
  }
  // Simulate a torn write: half a record at the tail.
  {
    std::ofstream f(Path("log"), std::ios::binary | std::ios::app);
    uint32_t len = 100;
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write("partial", 7);
  }
  auto log = LogStore::Open(Path("log"));
  std::vector<std::string> records;
  Status st = log->Replay([&](std::string_view r) { records.emplace_back(r); });
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "good");
}

TEST_F(StorageTest, CorruptPayloadDetected) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("aaaaaaaa").ok());
    ASSERT_TRUE(log->Append("bbbbbbbb").ok());
  }
  {
    // Flip one payload byte of the first record (offset 8 = after framing).
    std::fstream f(Path("log"), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    f.put('X');
  }
  auto log = LogStore::Open(Path("log"));
  std::vector<std::string> records;
  (void)log->Replay([&](std::string_view r) { records.emplace_back(r); });
  // The corrupt record must not be delivered.
  for (const std::string& r : records) EXPECT_NE(r, "Xaaaaaaa");
}

TEST_F(StorageTest, TruncateEmptiesLog) {
  auto log = LogStore::Open(Path("log"));
  ASSERT_TRUE(log->Append("x").ok());
  ASSERT_TRUE(log->Truncate().ok());
  int count = 0;
  ASSERT_TRUE(log->Replay([&](std::string_view) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  // Still usable after truncation.
  ASSERT_TRUE(log->Append("y").ok());
  ASSERT_TRUE(log->Replay([&](std::string_view r) {
                    EXPECT_EQ(r, "y");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(StorageTest, FsyncedAppendSurvivesSimulatedCrash) {
  LogStore::Options options;
  options.fsync_every_n = 1;  // Every Append is on stable storage.
  auto log = LogStore::Open(Path("log"), options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("alpha").ok());
  ASSERT_TRUE(log->Append("beta").ok());

  // Simulated crash right after the flushed append: snapshot the on-disk
  // bytes while the writer is still open (no destructor/close runs — only
  // what Append itself pushed to the file counts), then recover from the
  // snapshot.
  ASSERT_TRUE(
      std::filesystem::copy_file(Path("log"), Path("after_crash")));
  auto recovered = LogStore::Open(Path("after_crash"));
  ASSERT_TRUE(recovered.ok());
  std::vector<std::string> records;
  ASSERT_TRUE(recovered
                  ->Replay([&](std::string_view r) { records.emplace_back(r); })
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "beta");
}

TEST_F(StorageTest, ExplicitSyncFlushesWithoutCadence) {
  auto log = LogStore::Open(Path("log"));  // fsync_every_n = 0.
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("one").ok());
  ASSERT_TRUE(log->Sync().ok());
  ASSERT_TRUE(std::filesystem::copy_file(Path("log"), Path("after_crash")));
  auto recovered = LogStore::Open(Path("after_crash"));
  ASSERT_TRUE(recovered.ok());
  int count = 0;
  ASSERT_TRUE(recovered
                  ->Replay([&](std::string_view r) {
                    EXPECT_EQ(r, "one");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

// --------------------------------------------------------- PersistentMap --

TEST_F(StorageTest, MapForwardsDurabilityOptions) {
  LogStore::Options options;
  options.fsync_every_n = 1;
  auto map = PersistentMap::Open(Path("map"), options);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put("k", "v").ok());
  ASSERT_TRUE(std::filesystem::copy_file(Path("map"), Path("map_crash")));
  auto recovered = PersistentMap::Open(Path("map_crash"));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("k"), std::optional<std::string>("v"));
}

TEST_F(StorageTest, MapPutGetDelete) {
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put("k1", "v1").ok());
  ASSERT_TRUE(map->Put("k2", "v2").ok());
  EXPECT_EQ(map->Get("k1"), "v1");
  EXPECT_TRUE(map->Contains("k2"));
  ASSERT_TRUE(map->Delete("k1").ok());
  EXPECT_EQ(map->Get("k1"), std::nullopt);
  EXPECT_EQ(map->size(), 1u);
}

TEST_F(StorageTest, MapOverwriteKeepsLatest) {
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map->Put("k", "old").ok());
  ASSERT_TRUE(map->Put("k", "new").ok());
  EXPECT_EQ(map->Get("k"), "new");
}

TEST_F(StorageTest, MapRecoversAfterReopen) {
  {
    auto map = PersistentMap::Open(Path("map"));
    ASSERT_TRUE(map->Put("a", "1").ok());
    ASSERT_TRUE(map->Put("b", "2").ok());
    ASSERT_TRUE(map->Delete("a").ok());
    ASSERT_TRUE(map->Put("c", "3").ok());
  }
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->size(), 2u);
  EXPECT_EQ(map->Get("a"), std::nullopt);
  EXPECT_EQ(map->Get("b"), "2");
  EXPECT_EQ(map->Get("c"), "3");
}

TEST_F(StorageTest, MapHandlesBinaryKeysAndValues) {
  auto map = PersistentMap::Open(Path("map"));
  std::string key("k\0ey", 4);
  std::string value("v\0al\n", 5);
  ASSERT_TRUE(map->Put(key, value).ok());
  EXPECT_EQ(map->Get(key), value);
}

TEST_F(StorageTest, CheckpointCompactsAndPreservesState) {
  {
    auto map = PersistentMap::Open(Path("map"));
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(map->Put("key", "v" + std::to_string(i)).ok());
    }
    size_t before = std::filesystem::file_size(Path("map"));
    ASSERT_TRUE(map->Checkpoint().ok());
    size_t after = std::filesystem::file_size(Path("map"));
    EXPECT_LT(after, before / 10);
  }
  auto map = PersistentMap::Open(Path("map"));
  EXPECT_EQ(map->Get("key"), "v99");
}


TEST_F(StorageTest, AutoCheckpointBoundsLogGrowth) {
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok());
  map->SetAutoCheckpoint(4096);
  // Churn one key far past the threshold: the log must stay bounded.
  std::string value(128, 'v');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(map->Put("key", value + std::to_string(i)).ok());
  }
  size_t size = std::filesystem::file_size(Path("map"));
  EXPECT_LT(size, 8192u);  // Threshold + one record, roughly.
  EXPECT_EQ(map->Get("key"), value + "999");
  // State still correct after reopen.
  auto reopened = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Get("key"), value + "999");
}

TEST_F(StorageTest, MapRecoversFromTornTail) {
  {
    auto map = PersistentMap::Open(Path("map"));
    ASSERT_TRUE(map->Put("stable", "yes").ok());
  }
  {
    std::ofstream f(Path("map"), std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00garbage", 11);
  }
  auto map = PersistentMap::Open(Path("map"));
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->Get("stable"), "yes");
}

// ------------------------------- Corruption sweeps & fault injection --

std::string ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const std::vector<std::string>& SampleRecords() {
  static const std::vector<std::string> kRecords = {"alpha", "bravo-bravo",
                                                    "charlie!"};
  return kRecords;
}

// Flip every single byte of a healthy log, one at a time. Replay must never
// crash, never deliver a record that was not written, and always deliver a
// clean prefix of the original sequence (the flip stops delivery at the
// damaged record, not before).
TEST_F(StorageTest, ByteFlipSweepDeliversOnlyAPrefix) {
  {
    auto log = LogStore::Open(Path("log"));
    for (const std::string& r : SampleRecords()) {
      ASSERT_TRUE(log->Append(r).ok());
    }
  }
  const std::string bytes = ReadAll(Path("log"));
  ASSERT_FALSE(bytes.empty());
  for (size_t i = 0; i < bytes.size(); ++i) {
    SCOPED_TRACE("byte flipped at offset " + std::to_string(i));
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0xFF);
    WriteAll(Path("flipped"), damaged);

    auto log = LogStore::Open(Path("flipped"));
    ASSERT_TRUE(log.ok());
    std::vector<std::string> out;
    Status st = log->Replay([&](std::string_view r) { out.emplace_back(r); });
    EXPECT_TRUE(st.ok() || st.IsCorruption()) << st.ToString();
    ASSERT_LE(out.size(), SampleRecords().size());
    for (size_t j = 0; j < out.size(); ++j) {
      EXPECT_EQ(out[j], SampleRecords()[j]);
    }
    ASSERT_TRUE(log->Close().ok());
  }
}

// Truncate a healthy log at every possible length. Pure truncation is
// exactly what a power loss produces, so Replay must report OK (torn tail,
// not corruption) and deliver every record that fits completely.
TEST_F(StorageTest, TruncationSweepRecoversThePrefix) {
  {
    auto log = LogStore::Open(Path("log"));
    for (const std::string& r : SampleRecords()) {
      ASSERT_TRUE(log->Append(r).ok());
    }
  }
  const std::string bytes = ReadAll(Path("log"));
  // Cumulative end offset of each record: 8-byte header + payload.
  std::vector<size_t> ends;
  size_t at = 0;
  for (const std::string& r : SampleRecords()) {
    at += 8 + r.size();
    ends.push_back(at);
  }
  ASSERT_EQ(at, bytes.size());

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    WriteAll(Path("cut"), bytes.substr(0, cut));
    auto log = LogStore::Open(Path("cut"));
    ASSERT_TRUE(log.ok());
    std::vector<std::string> out;
    Status st = log->Replay([&](std::string_view r) { out.emplace_back(r); });
    EXPECT_TRUE(st.ok()) << st.ToString();
    size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    ASSERT_EQ(out.size(), expect);
    for (size_t j = 0; j < out.size(); ++j) {
      EXPECT_EQ(out[j], SampleRecords()[j]);
    }
    ASSERT_TRUE(log->Close().ok());
  }
}

// A corrupt length field must be rejected before it is trusted for an
// allocation — a flipped high bit must not turn into a multi-GB resize.
TEST_F(StorageTest, AbsurdLengthFieldIsCorruptionNotAnAllocation) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("good").ok());
  }
  {
    std::ofstream f(Path("log"), std::ios::binary | std::ios::app);
    uint32_t len = 0xFFFFFF00u;  // ~4 GB, far past kMaxLogRecordLen.
    uint32_t crc = 0;
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    f.write("stub", 4);
  }
  auto log = LogStore::Open(Path("log"));
  std::vector<std::string> out;
  Status st = log->Replay([&](std::string_view r) { out.emplace_back(r); });
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "good");
}

// The two damage classes are told apart: interior damage (a complete record
// failing its CRC — cannot come from power loss) is Corruption; a missing
// tail (exactly what power loss produces) is OK.
TEST_F(StorageTest, InteriorDamageIsCorruptionTornTailIsNot) {
  {
    auto log = LogStore::Open(Path("log"));
    ASSERT_TRUE(log->Append("first-record").ok());
    ASSERT_TRUE(log->Append("second-record").ok());
  }
  const std::string bytes = ReadAll(Path("log"));

  // Interior: flip a payload byte of the FIRST record.
  std::string damaged = bytes;
  damaged[9] = static_cast<char>(damaged[9] ^ 0x01);
  WriteAll(Path("interior"), damaged);
  auto interior = LogStore::Open(Path("interior"));
  int delivered = 0;
  Status st = interior->Replay([&](std::string_view) { ++delivered; });
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(delivered, 0);

  // Tail: drop the last 3 bytes.
  WriteAll(Path("torn"), bytes.substr(0, bytes.size() - 3));
  auto torn = LogStore::Open(Path("torn"));
  std::vector<std::string> out;
  st = torn->Replay([&](std::string_view r) { out.emplace_back(r); });
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "first-record");
}

// Once an fsync fails, the store wedges itself shut: the kernel may have
// dropped the dirty pages, so a later "successful" fsync proves nothing
// (the fsync-gate hazard). The original error must keep coming back.
TEST_F(StorageTest, FsyncFailurePoisonIsSticky) {
  MemEnv mem;
  FaultyEnv faulty(&mem);
  LogStore::Options options;
  options.env = &faulty;
  options.fsync_every_n = 1;
  auto log = LogStore::Open("log", options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("before").ok());

  faulty.FailSyncs(true);
  Status st = log->Append("doomed");
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(log->poisoned().ok());

  // The disk "recovers" — the store must not.
  faulty.FailSyncs(false);
  EXPECT_FALSE(log->Append("after").ok());
  EXPECT_FALSE(log->Sync().ok());
  EXPECT_FALSE(log->Truncate().ok());
  EXPECT_EQ(log->Append("again").ToString(), st.ToString());
}

// ENOSPC mid-Put: the write fails, the in-memory map must not pretend the
// mutation happened, and what did reach the file stays recoverable.
TEST_F(StorageTest, EnospcFailsPutAndKeepsMapConsistent) {
  MemEnv mem;
  FaultyEnv faulty(&mem);
  LogStore::Options options;
  options.env = &faulty;
  options.fsync_every_n = 1;
  {
    auto map = PersistentMap::Open("map", options);
    ASSERT_TRUE(map.ok());
    ASSERT_TRUE(map->Put("a", "1").ok());

    faulty.FailAppends(true);
    EXPECT_FALSE(map->Put("b", "2").ok());
    EXPECT_EQ(map->Get("b"), std::nullopt);
    EXPECT_EQ(map->Get("a"), "1");
    // The framing is untrustworthy after a failed append: poisoned.
    faulty.FailAppends(false);
    EXPECT_FALSE(map->Put("c", "3").ok());
  }
  LogStore::Options clean;
  clean.env = &mem;
  auto recovered = PersistentMap::Open("map", clean);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("a"), "1");
  EXPECT_EQ(recovered->size(), 1u);
}

// A short write tears the record in half. The torn half must read back as
// an ordinary torn tail: earlier records recover, the victim is gone.
TEST_F(StorageTest, ShortWriteLeavesARecoverableTornTail) {
  MemEnv mem;
  FaultyEnv faulty(&mem);
  LogStore::Options options;
  options.env = &faulty;
  {
    auto log = LogStore::Open("log", options);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("complete-record").ok());
    ASSERT_TRUE(log->Sync().ok());
    faulty.ShortWrites(true);
    EXPECT_FALSE(log->Append("torn-victim-record").ok());
    faulty.ShortWrites(false);
  }
  LogStore::Options clean;
  clean.env = &mem;
  auto log = LogStore::Open("log", clean);
  ASSERT_TRUE(log.ok());
  std::vector<std::string> out;
  Status st = log->Replay([&](std::string_view r) { out.emplace_back(r); });
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "complete-record");
}

// ------------------------------------------------------ MemEnv semantics --

TEST_F(StorageTest, MemEnvPowerLossDropsUnsyncedBytes) {
  MemEnv mem;
  auto file = mem.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(mem.SyncDir(".").ok());  // Make the create durable.
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());

  mem.PowerLoss();
  // The env refuses everything until the machine comes back.
  EXPECT_FALSE(mem.FileExists("f"));
  mem.Reboot();

  EXPECT_FALSE((*file)->Append("stale handle").ok());  // Pre-crash handle.
  auto size = mem.GetFileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 7u);  // "durable" survived, "volatile" did not.
}

TEST_F(StorageTest, MemEnvPowerLossRollsBackUnsyncedMetadata) {
  MemEnv mem;
  // Create + SyncDir: survives. Create without SyncDir: rolled back.
  { auto f = mem.NewWritableFile("kept", false); ASSERT_TRUE(f.ok()); }
  ASSERT_TRUE(mem.SyncDir(".").ok());
  { auto f = mem.NewWritableFile("lost", false); ASSERT_TRUE(f.ok()); }
  // Rename without SyncDir: rolled back too.
  ASSERT_TRUE(mem.RenameFile("kept", "renamed").ok());

  mem.PowerLoss();
  mem.Reboot();
  EXPECT_TRUE(mem.FileExists("kept"));
  EXPECT_FALSE(mem.FileExists("lost"));
  EXPECT_FALSE(mem.FileExists("renamed"));
}

}  // namespace
}  // namespace xymon::storage
