#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sublang/cost_model.h"
#include "src/sublang/parser.h"
#include "src/sublang/template.h"
#include "src/sublang/validator.h"
#include "src/xml/serializer.h"

namespace xymon::sublang {
namespace {

using alerters::Comparator;
using alerters::Condition;
using alerters::ConditionKind;
using warehouse::DocStatus;
using xmldiff::ChangeOp;

SubscriptionAst MustParse(std::string_view text) {
  auto sub = ParseSubscription(text);
  EXPECT_TRUE(sub.ok()) << sub.status().ToString();
  return std::move(sub).value();
}

// The paper's running example (§2.2), verbatim modulo the omitted queries.
constexpr char kMyXyleme[] = R"(
subscription MyXyleme

monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self

monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X

continuous ReferenceXyleme
% a query that computes the sites that reference Xyleme
select site from references//site where site contains "xyleme"
try biweekly

refresh "http://inria.fr/Xy/members.xml" weekly

report
when notifications.count > 100
)";

TEST(SublangParserTest, PaperExampleParses) {
  SubscriptionAst sub = MustParse(kMyXyleme);
  EXPECT_EQ(sub.name, "MyXyleme");
  ASSERT_EQ(sub.monitoring.size(), 2u);
  ASSERT_EQ(sub.continuous.size(), 1u);
  ASSERT_EQ(sub.refresh.size(), 1u);
  ASSERT_TRUE(sub.report.has_value());

  // First monitoring query: template select, URL prefix + weak status.
  const MonitoringQueryAst& m1 = sub.monitoring[0];
  EXPECT_EQ(m1.name, "UpdatedPage");  // Named after the template root.
  EXPECT_EQ(m1.select.kind, SelectClause::Kind::kTemplate);
  ASSERT_EQ(m1.conditions().size(), 2u);
  EXPECT_EQ(m1.conditions()[0].kind, ConditionKind::kUrlExtends);
  EXPECT_EQ(m1.conditions()[0].str_value, "http://inria.fr/Xy/");
  EXPECT_EQ(m1.conditions()[1].kind, ConditionKind::kDocStatus);
  EXPECT_EQ(m1.conditions()[1].status, DocStatus::kUpdated);  // modified alias

  // Second: variable select bound by from, element-change on Member.
  const MonitoringQueryAst& m2 = sub.monitoring[1];
  EXPECT_EQ(m2.select.kind, SelectClause::Kind::kVariable);
  EXPECT_EQ(m2.select.variable, "X");
  ASSERT_TRUE(m2.from.has_value());
  EXPECT_EQ(m2.from->tag, "Member");
  EXPECT_TRUE(m2.from->descendant);
  ASSERT_EQ(m2.conditions().size(), 2u);
  EXPECT_EQ(m2.conditions()[0].kind, ConditionKind::kUrlEquals);
  EXPECT_EQ(m2.conditions()[1].kind, ConditionKind::kElementChange);
  EXPECT_EQ(m2.conditions()[1].tag, "Member");  // X resolved via from clause.
  EXPECT_EQ(m2.conditions()[1].change_op, ChangeOp::kNew);

  // Continuous: biweekly frequency.
  EXPECT_EQ(sub.continuous[0].name, "ReferenceXyleme");
  EXPECT_EQ(sub.continuous[0].frequency, Frequency::kBiweekly);
  EXPECT_FALSE(sub.continuous[0].delta);

  // Refresh.
  EXPECT_EQ(sub.refresh[0].url, "http://inria.fr/Xy/members.xml");
  EXPECT_EQ(sub.refresh[0].frequency, Frequency::kWeekly);

  // Report: count > 100.
  ASSERT_EQ(sub.report->when.atoms.size(), 1u);
  EXPECT_EQ(sub.report->when.atoms[0].kind,
            ReportCondition::Atom::Kind::kCount);
  EXPECT_EQ(sub.report->when.atoms[0].cmp, Comparator::kGt);
  EXPECT_EQ(sub.report->when.atoms[0].count, 100u);
}

TEST(SublangParserTest, AllUrlConditionKinds) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL = "http://a/" and filename = "index.html"
  and DTD = "http://a/d.dtd" and DTDID = 7 and DOCID = 12
  and domain = "biology"
  and LastAccessed >= "2001-05-21" and LastUpdate < 1000000
report when immediate
)");
  const auto& conds = sub.monitoring[0].conditions();
  ASSERT_EQ(conds.size(), 8u);
  EXPECT_EQ(conds[0].kind, ConditionKind::kUrlEquals);
  EXPECT_EQ(conds[1].kind, ConditionKind::kFilenameEquals);
  EXPECT_EQ(conds[2].kind, ConditionKind::kDtdUrlEquals);
  EXPECT_EQ(conds[3].kind, ConditionKind::kDtdIdEquals);
  EXPECT_EQ(conds[3].num_value, 7u);
  EXPECT_EQ(conds[4].kind, ConditionKind::kDocIdEquals);
  EXPECT_EQ(conds[5].kind, ConditionKind::kDomainEquals);
  EXPECT_EQ(conds[6].kind, ConditionKind::kLastAccessedCmp);
  EXPECT_EQ(conds[6].cmp, Comparator::kGe);
  // 2001-05-21 (the SIGMOD 2001 date) as a Unix timestamp.
  EXPECT_EQ(conds[6].date_value, 990403200);
  EXPECT_EQ(conds[7].kind, ConditionKind::kLastUpdateCmp);
  EXPECT_EQ(conds[7].cmp, Comparator::kLt);
  EXPECT_EQ(conds[7].date_value, 1000000);
}

TEST(SublangParserTest, ElementConditionsAllForms) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where new Product
  and updated Product contains "camera"
  and deleted Offer
  and Review strict contains "excellent"
  and self contains "xml"
report when immediate
)");
  const auto& conds = sub.monitoring[0].conditions();
  ASSERT_EQ(conds.size(), 5u);
  EXPECT_EQ(conds[0].change_op, ChangeOp::kNew);
  EXPECT_EQ(conds[0].tag, "Product");
  EXPECT_TRUE(conds[0].word.empty());
  EXPECT_EQ(conds[1].change_op, ChangeOp::kUpdated);
  EXPECT_EQ(conds[1].word, "camera");
  EXPECT_FALSE(conds[1].strict);
  EXPECT_EQ(conds[2].change_op, ChangeOp::kDeleted);
  EXPECT_FALSE(conds[3].change_op.has_value());
  EXPECT_TRUE(conds[3].strict);
  EXPECT_EQ(conds[3].word, "excellent");
  EXPECT_EQ(conds[4].kind, ConditionKind::kSelfContains);
  EXPECT_EQ(conds[4].str_value, "xml");
}

TEST(SublangParserTest, XylemeCompetitorsNotificationTrigger) {
  // The paper's second example (§5.2).
  SubscriptionAst sub = MustParse(R"(
subscription XylemeCompetitors
monitoring
select <ChangeInMyProducts/>
where URL = "www.xyleme.com/products.xml"
  and modified self
continuous MyCompetitors
select c from market//competitor c
when XylemeCompetitors.ChangeInMyProducts
report when immediate
)");
  ASSERT_EQ(sub.continuous.size(), 1u);
  EXPECT_FALSE(sub.continuous[0].frequency.has_value());
  EXPECT_EQ(sub.continuous[0].trigger_subscription, "XylemeCompetitors");
  EXPECT_EQ(sub.continuous[0].trigger_query, "ChangeInMyProducts");
}

TEST(SublangParserTest, ContinuousDelta) {
  SubscriptionAst sub = MustParse(R"(
subscription S
continuous delta AmsterdamPaintings
select p/title from culture/museum m, m/painting p
where m/address contains "Amsterdam"
when biweekly
report when weekly
)");
  ASSERT_EQ(sub.continuous.size(), 1u);
  EXPECT_TRUE(sub.continuous[0].delta);
  EXPECT_NE(sub.continuous[0].query_text.find("p/title"), std::string::npos);
  EXPECT_EQ(sub.continuous[0].query_text.find("when"), std::string::npos);
}

TEST(SublangParserTest, ReportClauseFull) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://site.org/"
report
select X from self//UpdatedPage X
when count >= 500 or count(UpdatedPage) = 10 or immediate or daily
atmost 500
atmost weekly
archive monthly
)");
  ASSERT_TRUE(sub.report.has_value());
  const ReportSpec& spec = *sub.report;
  EXPECT_NE(spec.query_text.find("UpdatedPage"), std::string::npos);
  ASSERT_EQ(spec.when.atoms.size(), 4u);
  EXPECT_EQ(spec.when.atoms[0].kind, ReportCondition::Atom::Kind::kCount);
  EXPECT_EQ(spec.when.atoms[1].kind, ReportCondition::Atom::Kind::kNamedCount);
  EXPECT_EQ(spec.when.atoms[1].query_name, "UpdatedPage");
  EXPECT_EQ(spec.when.atoms[2].kind, ReportCondition::Atom::Kind::kImmediate);
  EXPECT_EQ(spec.when.atoms[3].kind, ReportCondition::Atom::Kind::kPeriodic);
  EXPECT_EQ(spec.when.atoms[3].frequency, Frequency::kDaily);
  EXPECT_EQ(spec.atmost_count, 500u);
  EXPECT_FALSE(spec.publish_web);
  EXPECT_EQ(spec.atmost_rate, Frequency::kWeekly);
  EXPECT_EQ(spec.archive, Frequency::kMonthly);
}

TEST(SublangParserTest, PublishClause) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://site.org/"
report
when weekly
publish
archive monthly
)");
  ASSERT_TRUE(sub.report.has_value());
  EXPECT_TRUE(sub.report->publish_web);
  EXPECT_EQ(sub.report->archive, Frequency::kMonthly);
}

TEST(SublangParserTest, VirtualSubscription) {
  SubscriptionAst sub = MustParse(R"(
subscription MyVirtualXyleme
virtual MyXyleme.Member
)");
  ASSERT_EQ(sub.virtuals.size(), 1u);
  EXPECT_EQ(sub.virtuals[0].subscription, "MyXyleme");
  EXPECT_EQ(sub.virtuals[0].query, "Member");
}

TEST(SublangParserTest, CommentsIgnoredEverywhere) {
  SubscriptionAst sub = MustParse(
      "subscription S % trailing comment\n"
      "% full-line comment\n"
      "monitoring % another\n"
      "select default\n"
      "where URL extends \"http://a.org/\" % comment\n"
      "report when immediate\n");
  EXPECT_EQ(sub.monitoring.size(), 1u);
}

TEST(SublangParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseSubscription("monitoring select x").ok());
  EXPECT_FALSE(ParseSubscription("subscription").ok());
  EXPECT_FALSE(
      ParseSubscription("subscription S monitoring where new self").ok());
  EXPECT_FALSE(ParseSubscription(
                   "subscription S monitoring select default").ok());
  EXPECT_FALSE(ParseSubscription("subscription S continuous Q when daily")
                   .ok());  // No query body.
  EXPECT_FALSE(ParseSubscription("subscription S report when").ok());
  EXPECT_FALSE(
      ParseSubscription("subscription S virtual MissingDot").ok());
  EXPECT_FALSE(ParseSubscription(
                   "subscription S monitoring select default "
                   "where URL extends \"unterminated").ok());
}

TEST(SublangParserTest, MonitoringQueriesGetDefaultNames) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://a.org/"
report when immediate
)");
  EXPECT_EQ(sub.monitoring[0].name, "m1");
}

TEST(SublangParserTest, DisjunctiveWhereClause) {
  // Disjunctions: the paper's conclusion lists them as future work; the
  // where clause is DNF with `and` binding tighter than `or`.
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://a.example.org/" and new Product
   or URL extends "http://b.example.org/" and deleted Product
   or self contains "xyleme"
report when immediate
)");
  const auto& disjuncts = sub.monitoring[0].disjuncts;
  ASSERT_EQ(disjuncts.size(), 3u);
  ASSERT_EQ(disjuncts[0].size(), 2u);
  EXPECT_EQ(disjuncts[0][0].kind, ConditionKind::kUrlExtends);
  EXPECT_EQ(disjuncts[0][1].change_op, ChangeOp::kNew);
  ASSERT_EQ(disjuncts[1].size(), 2u);
  EXPECT_EQ(disjuncts[1][1].change_op, ChangeOp::kDeleted);
  ASSERT_EQ(disjuncts[2].size(), 1u);
  EXPECT_EQ(disjuncts[2][0].kind, ConditionKind::kSelfContains);
}

TEST(ValidatorTest, EveryDisjunctNeedsAStrongCondition) {
  // A weak-only disjunct would fire on nearly every document.
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://a.example.org/" or modified self
report when immediate
)");
  EXPECT_TRUE(Validate(sub).IsInvalidArgument());
}

// -------------------------------------------------------------- CostModel --

TEST(CostModelTest, SelectiveConditionsAreCheap) {
  SubscriptionAst cheap = MustParse(R"(
subscription Cheap
monitoring
select default
where URL = "http://one.page.example.org/exact.xml" and new Product
report when immediate
)");
  SubscriptionAst broad = MustParse(R"(
subscription Broad
monitoring
select default
where domain = "biology" and self contains "dna"
report when immediate
)");
  EXPECT_LT(EstimateCost(cheap), EstimateCost(broad));
}

TEST(CostModelTest, ConjunctionChargedAtMostSelectiveCondition) {
  // Adding a selective condition to a broad one *reduces* the estimate:
  // the conjunction only fires when both hold.
  SubscriptionAst broad = MustParse(R"(
subscription B
monitoring
select default
where domain = "biology"
report when immediate
)");
  SubscriptionAst narrowed = MustParse(R"(
subscription N
monitoring
select default
where domain = "biology" and URL = "http://x.example.org/one.xml"
report when immediate
)");
  EXPECT_LT(EstimateCost(narrowed), EstimateCost(broad));
}

TEST(CostModelTest, FrequentContinuousQueriesCostMore) {
  SubscriptionAst hourly = MustParse(R"(
subscription H
continuous Q
select m from any/museum m
when hourly
report when immediate
)");
  SubscriptionAst monthly = MustParse(R"(
subscription M
continuous Q
select m from any/museum m
when monthly
report when immediate
)");
  EXPECT_GT(EstimateCost(hourly), 10 * EstimateCost(monthly));
}

TEST(CostModelTest, VirtualSubscriptionsNearlyFree) {
  SubscriptionAst virt = MustParse("subscription V\nvirtual Other.Q\n");
  EXPECT_LT(EstimateCost(virt), 1.0);
}

TEST(CostModelTest, ShortContainsWordsCostMore) {
  Condition short_word;
  short_word.kind = ConditionKind::kSelfContains;
  short_word.str_value = "eu";
  Condition long_word;
  long_word.kind = ConditionKind::kSelfContains;
  long_word.str_value = "photosynthesis";
  EXPECT_GT(ConditionCost(short_word), ConditionCost(long_word));
}

TEST(ValidatorTest, CostBudgetEnforcedUnlessPrivileged) {
  SubscriptionAst expensive = MustParse(R"(
subscription E
continuous Q
select m from any/museum m
when hourly
report when immediate
)");
  ValidatorOptions opts;
  opts.max_cost = 100;
  EXPECT_TRUE(Validate(expensive, opts).IsResourceExhausted());
  opts.privileged = true;
  EXPECT_TRUE(Validate(expensive, opts).ok());
  opts.privileged = false;
  opts.max_cost = 0;  // Disabled.
  EXPECT_TRUE(Validate(expensive, opts).ok());
}

TEST(SublangParserTest, FuzzedInputsNeverCrash) {
  // Byte-level mutations of a valid subscription plus random token soup:
  // the parser must return ok or a clean ParseError, never crash or hang.
  Rng rng(17);
  std::string base(kMyXyleme);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = base;
    size_t flips = 1 + rng.Uniform(6);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(128));
    }
    auto result = ParseSubscription(mutated);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  static const char* kTokens[] = {"subscription", "monitoring", "select",
                                  "where", "and", "or", "report", "when",
                                  "\"str\"", "42", "<x/>", "//", ".", "(",
                                  ")", "contains", "URL", "self", "new"};
  for (int round = 0; round < 300; ++round) {
    std::string soup;
    size_t tokens = rng.Uniform(30);
    for (size_t t = 0; t < tokens; ++t) {
      soup += kTokens[rng.Uniform(19)];
      soup += ' ';
    }
    (void)ParseSubscription(soup);
  }
}

// --------------------------------------------------------------- Template --

TEST(TemplateTest, NormalizeQuotesBareIdentifiers) {
  EXPECT_EQ(NormalizeXmlTemplate("<UpdatedPage url=URL/>"),
            "<UpdatedPage url=\"$URL$\"/>");
  EXPECT_EQ(NormalizeXmlTemplate("<P a=\"kept\" b=VAR c='kept2'/>"),
            "<P a=\"kept\" b=\"$VAR$\" c='kept2'/>");
}

TEST(TemplateTest, ExpandSubstitutesVariables) {
  auto node = ExpandTemplate("<UpdatedPage url=\"$URL$\" other=\"x\"/>",
                             {{"URL", "http://i/"}});
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ(*(*node)->GetAttribute("url"), "http://i/");
  EXPECT_EQ(*(*node)->GetAttribute("other"), "x");
}

TEST(TemplateTest, UnknownVariableBecomesEmpty) {
  auto node = ExpandTemplate("<p a=\"$NOPE$\"/>", {});
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*(*node)->GetAttribute("a"), "");
}

TEST(TemplateTest, MalformedTemplateRejected) {
  EXPECT_FALSE(ExpandTemplate("<unclosed", {}).ok());
}

// -------------------------------------------------------------- Frequency --

TEST(FrequencyTest, PeriodsAndNames) {
  EXPECT_EQ(FrequencyPeriod(Frequency::kBiweekly), kWeek / 2);
  EXPECT_EQ(FrequencyPeriod(Frequency::kDaily), kDay);
  EXPECT_EQ(FrequencyFromName("monthly"), Frequency::kMonthly);
  EXPECT_EQ(FrequencyFromName("yearly"), std::nullopt);
  EXPECT_STREQ(FrequencyName(Frequency::kHourly), "hourly");
}

// -------------------------------------------------------------- Validator --

TEST(ValidatorTest, AcceptsPaperExample) {
  EXPECT_TRUE(Validate(MustParse(kMyXyleme)).ok());
}

TEST(ValidatorTest, RejectsWeakOnlyWhereClause) {
  // The paper's rule (§5.1): `where modified self` alone is disallowed.
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where modified self
report when immediate
)");
  Status st = Validate(sub);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("weak"), std::string::npos);
}

TEST(ValidatorTest, DeletedSelfAloneIsAllowed) {
  // `deleted self` is strong (deletions are rare).
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where deleted self
report when immediate
)");
  EXPECT_TRUE(Validate(sub).ok());
}

TEST(ValidatorTest, RejectsStopWords) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where Product contains "the"
report when immediate
)");
  EXPECT_TRUE(Validate(sub).IsInvalidArgument());
}

TEST(ValidatorTest, RejectsShortUrlPrefix) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://"
report when immediate
)");
  EXPECT_TRUE(Validate(sub).IsInvalidArgument());
}

TEST(ValidatorTest, RejectsEmptySubscription) {
  SubscriptionAst sub;
  sub.name = "Empty";
  EXPECT_TRUE(Validate(sub).IsInvalidArgument());
}

TEST(ValidatorTest, RejectsMissingReport) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where URL extends "http://a.org/"
)");
  EXPECT_TRUE(Validate(sub).IsInvalidArgument());
}

TEST(ValidatorTest, VirtualOnlyNeedsNoReport) {
  SubscriptionAst sub = MustParse(R"(
subscription V
virtual Other.Query
)");
  EXPECT_TRUE(Validate(sub).ok());
}

TEST(ValidatorTest, RejectsUnboundSelectVariable) {
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select Y
from self//Member X
where URL extends "http://a.org/" and new X
report when immediate
)");
  EXPECT_TRUE(Validate(sub).IsInvalidArgument());
}

TEST(ValidatorTest, CustomOptionsApply) {
  ValidatorOptions opts;
  opts.stop_words = {"camera"};
  SubscriptionAst sub = MustParse(R"(
subscription S
monitoring
select default
where Product contains "camera"
report when immediate
)");
  EXPECT_TRUE(Validate(sub, opts).IsInvalidArgument());
  EXPECT_TRUE(Validate(sub).ok());  // Default stop words allow "camera".
}

}  // namespace
}  // namespace xymon::sublang
