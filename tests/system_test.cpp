#include <gtest/gtest.h>

#include <filesystem>

#include "src/system/monitor.h"
#include "src/xml/parser.h"
#include "src/webstub/crawler.h"
#include "src/webstub/synthetic_web.h"

namespace xymon::system {
namespace {

// The paper's MyXyleme subscription (§2.2), with reporting tuned small so a
// test exercises the full loop quickly.
constexpr char kMyXyleme[] = R"(
subscription MyXyleme
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/" and modified self
monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml" and new X
report
when count >= 5
)";

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : clock_(1000), monitor_(&clock_) {}

  SimClock clock_;
  XylemeMonitor monitor_;
};

TEST_F(SystemTest, MyXylemeEndToEnd) {
  auto sub = monitor_.Subscribe(kMyXyleme, "benjamin@inria.fr");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  // First crawl: pages are new, not modified — only `new Member` can fire,
  // and it needs the members page.
  monitor_.ProcessFetch("http://inria.fr/Xy/index.html", "<page>v1</page>");
  monitor_.ProcessFetch(
      "http://inria.fr/Xy/members.xml",
      "<Members><Member><name>jouglet</name></Member></Members>");
  // New document => every Member is new => 1 notification so far.
  EXPECT_EQ(monitor_.stats().notifications, 1u);

  // Second crawl: index page modified, two new members.
  clock_.Advance(kDay);
  monitor_.ProcessFetch("http://inria.fr/Xy/index.html", "<page>v2</page>");
  monitor_.ProcessFetch(
      "http://inria.fr/Xy/members.xml",
      "<Members><Member><name>jouglet</name></Member>"
      "<Member><name>nguyen</name></Member>"
      "<Member><name>preda</name></Member></Members>");

  // UpdatedPage for both pages + 2 new Members = 4 more notifications,
  // reaching the count >= 5 report threshold exactly.
  EXPECT_EQ(monitor_.stats().notifications, 5u);
  EXPECT_GE(monitor_.reporter().reports_generated(), 1u);
  ASSERT_GE(monitor_.outbox().sent_count(), 1u);

  const reporter::Email* mail = monitor_.outbox().last();
  ASSERT_NE(mail, nullptr);
  EXPECT_EQ(mail->to, "benjamin@inria.fr");
  // Report shape per §2.2: UpdatedPage elements with url attributes and the
  // new Member payloads.
  EXPECT_NE(mail->body.find("UpdatedPage"), std::string::npos);
  EXPECT_NE(mail->body.find("url=\"http://inria.fr/Xy/index.html\""),
            std::string::npos);
  EXPECT_NE(mail->body.find("<Member>"), std::string::npos);
  EXPECT_NE(mail->body.find("nguyen"), std::string::npos);
}

TEST_F(SystemTest, UninterestingPagesRaiseNoAlerts) {
  ASSERT_TRUE(monitor_.Subscribe(kMyXyleme, "u@x").ok());
  monitor_.ProcessFetch("http://elsewhere.org/", "<doc>hello</doc>");
  EXPECT_EQ(monitor_.stats().documents_processed, 1u);
  EXPECT_EQ(monitor_.stats().alerts_raised, 0u);
  EXPECT_EQ(monitor_.stats().notifications, 0u);
}

TEST_F(SystemTest, CatalogMonitoringWithContains) {
  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription Cameras
monitoring
select default
where URL extends "http://shop.example.com/"
  and updated Product contains "camera"
report when immediate
)",
                             "buyer@x")
                  .ok());

  monitor_.ProcessFetch(
      "http://shop.example.com/cat.xml",
      "<catalog><Product><name>camera z1</name><price>100</price></Product>"
      "<Product><name>tv</name><price>500</price></Product></catalog>");
  EXPECT_EQ(monitor_.stats().notifications, 0u);  // New, not updated.

  // Reprice the camera: fires.
  monitor_.ProcessFetch(
      "http://shop.example.com/cat.xml",
      "<catalog><Product><name>camera z1</name><price>90</price></Product>"
      "<Product><name>tv</name><price>500</price></Product></catalog>");
  EXPECT_EQ(monitor_.stats().notifications, 1u);

  // Reprice the tv: does not fire.
  monitor_.ProcessFetch(
      "http://shop.example.com/cat.xml",
      "<catalog><Product><name>camera z1</name><price>90</price></Product>"
      "<Product><name>tv</name><price>450</price></Product></catalog>");
  EXPECT_EQ(monitor_.stats().notifications, 1u);
}

TEST_F(SystemTest, ContinuousQueryOverWarehouse) {
  monitor_.AddDomainRule({"culture", "", "museum", ""});
  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription Art
continuous Paintings
select p/title from culture//painting p
when daily
report when immediate
)",
                             "curator@x")
                  .ok());

  monitor_.ProcessFetch(
      "http://art/rijks.xml",
      "<museum><painting><title>NightWatch</title></painting></museum>");

  clock_.Advance(kDay + 1);
  monitor_.Tick();
  ASSERT_GE(monitor_.reporter().reports_generated(), 1u);
  EXPECT_NE(monitor_.outbox().last()->body.find("NightWatch"),
            std::string::npos);
}

TEST_F(SystemTest, DeltaContinuousQueryReportsOnlyChanges) {
  monitor_.AddDomainRule({"culture", "", "museum", ""});
  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription ArtDelta
continuous delta Paintings
select p/title from culture//painting p
when daily
report when immediate
)",
                             "curator@x")
                  .ok());

  monitor_.ProcessFetch(
      "http://art/m.xml",
      "<museum><painting><title>A</title></painting></museum>");
  clock_.Advance(kDay + 1);
  monitor_.Tick();
  uint64_t after_first = monitor_.reporter().reports_generated();
  EXPECT_GE(after_first, 1u);  // Initial full result.

  // No change: next evaluation must NOT notify.
  clock_.Advance(kDay);
  monitor_.Tick();
  EXPECT_EQ(monitor_.reporter().reports_generated(), after_first);

  // Change: a delta notification arrives.
  monitor_.ProcessFetch(
      "http://art/m.xml",
      "<museum><painting><title>A</title></painting>"
      "<painting><title>B</title></painting></museum>");
  clock_.Advance(kDay);
  monitor_.Tick();
  EXPECT_GT(monitor_.reporter().reports_generated(), after_first);
  EXPECT_NE(monitor_.outbox().last()->body.find("Paintings-delta"),
            std::string::npos);
}

TEST_F(SystemTest, NotificationTriggeredContinuousQuery) {
  // §5.2's XylemeCompetitors: a monitoring query whose notifications
  // re-evaluate a continuous query.
  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription XylemeCompetitors
monitoring ChangeInMyProducts
select default
where URL = "http://www.xyleme.com/products.xml" and modified self
continuous MyCompetitors
select c from market//competitor c
when XylemeCompetitors.ChangeInMyProducts
report when immediate
)",
                             "ceo@xyleme.com")
                  .ok());
  monitor_.AddDomainRule({"market", "", "competitors", ""});
  monitor_.ProcessFetch("http://scan/market.xml",
                        "<competitors><competitor>conquer</competitor>"
                        "</competitors>");
  uint64_t before = monitor_.trigger_engine().firings();

  monitor_.ProcessFetch("http://www.xyleme.com/products.xml", "<p>v1</p>");
  EXPECT_EQ(monitor_.trigger_engine().firings(), before);  // New, not modified.
  monitor_.ProcessFetch("http://www.xyleme.com/products.xml", "<p>v2</p>");
  EXPECT_EQ(monitor_.trigger_engine().firings(), before + 1);
  EXPECT_NE(monitor_.outbox().last()->body.find("conquer"), std::string::npos);
}

TEST_F(SystemTest, VirtualSubscriptionSharesQueries) {
  ASSERT_TRUE(monitor_.Subscribe(kMyXyleme, "owner@x").ok());
  ASSERT_TRUE(monitor_
                  .Subscribe("subscription MyVirtual\n"
                             "virtual MyXyleme.UpdatedPage\n",
                             "guest@x")
                  .ok());
  // Virtual subscriptions add no monitoring machinery (the paper's cost
  // argument §5.4): still 2 complex events and 3 atomic events.
  EXPECT_EQ(monitor_.mqp().matcher().size(), 2u);

  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>1</p>");
  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>2</p>");
  // Virtual delivery is immediate (default report spec).
  bool guest_got_mail = false;
  for (const auto& mail : monitor_.outbox().sent()) {
    if (mail.to == "guest@x") guest_got_mail = true;
  }
  EXPECT_TRUE(guest_got_mail);
}

TEST_F(SystemTest, UnsubscribeStopsNotifications) {
  ASSERT_TRUE(monitor_.Subscribe(kMyXyleme, "u@x").ok());
  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>1</p>");
  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>2</p>");
  uint64_t before = monitor_.stats().notifications;
  EXPECT_GT(before, 0u);
  ASSERT_TRUE(monitor_.Unsubscribe("MyXyleme").ok());
  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>3</p>");
  EXPECT_EQ(monitor_.stats().notifications, before);
}

TEST_F(SystemTest, ExplicitDeletionRaisesDeletedEvents) {
  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription Del
monitoring
select default
where URL extends "http://gone.org/" and deleted self
report when immediate
)",
                             "u@x")
                  .ok());
  monitor_.ProcessFetch("http://gone.org/x.xml", "<a/>");
  EXPECT_EQ(monitor_.stats().notifications, 0u);
  ASSERT_TRUE(monitor_.ProcessDeletion("http://gone.org/x.xml").ok());
  EXPECT_EQ(monitor_.stats().notifications, 1u);
}

TEST_F(SystemTest, CrawlerDrivenScenario) {
  webstub::SyntheticWeb web(42);
  web.AddCatalogPage("http://shop.example.com/cat.xml",
                     "http://shop.example.com/dtd/catalog.dtd", 10);
  web.AddMembersPage("http://inria.fr/Xy/members.xml", 4);
  for (int i = 0; i < 5; ++i) {
    web.AddHtmlPage("http://misc.org/p" + std::to_string(i) + ".html");
  }

  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription Watch
monitoring
select default
where URL extends "http://shop.example.com/" and new Product
refresh "http://shop.example.com/cat.xml" hourly
report when count >= 1
)",
                             "u@x")
                  .ok());

  webstub::Crawler crawler(&web, /*default_period=*/kDay);
  monitor_.ApplyRefreshHints(&crawler);
  crawler.DiscoverAll(clock_.Now());

  // Day 0: full crawl — catalog is new, so new Product fires.
  for (const auto& doc : crawler.FetchAllDue(clock_.Now())) {
    monitor_.ProcessFetch(doc);
  }
  monitor_.Tick();
  EXPECT_GE(monitor_.reporter().reports_generated(), 1u);

  // A week of evolution, crawling every hour.
  uint64_t fetches_before = crawler.fetch_count();
  for (int day = 1; day <= 7; ++day) {
    web.Step();
    for (int hour = 0; hour < 24; ++hour) {
      clock_.Advance(kHour);
      for (const auto& doc : crawler.FetchAllDue(clock_.Now())) {
        monitor_.ProcessFetch(doc);
      }
    }
    monitor_.Tick();
  }
  // The hourly refresh hint makes the catalog page fetched far more often
  // than the pages on the daily default (24x vs 1x per day).
  EXPECT_GT(crawler.fetch_count(), fetches_before + 7 * web.page_count());
}

TEST_F(SystemTest, RecoveryAcrossRestart) {
  std::string path = std::filesystem::temp_directory_path() /
                     ("xymon_system_recovery_" + std::to_string(::getpid()));
  std::filesystem::remove(path);
  {
    SimClock clock(0);
    XylemeMonitor::Options options;
    options.storage_path = path;
    XylemeMonitor m1(&clock, options);
    ASSERT_TRUE(m1.Subscribe(kMyXyleme, "u@x").ok());
  }
  SimClock clock(0);
  XylemeMonitor::Options options;
  options.storage_path = path;
  XylemeMonitor m2(&clock, options);
  // Recovered subscription is fully live.
  m2.ProcessFetch("http://inria.fr/Xy/i.html", "<p>1</p>");
  m2.ProcessFetch("http://inria.fr/Xy/i.html", "<p>2</p>");
  EXPECT_GT(m2.stats().notifications, 0u);
  std::filesystem::remove(path);
}

TEST_F(SystemTest, DisjunctiveSubscriptionNotifiesOncePerDocument) {
  ASSERT_TRUE(monitor_
                  .Subscribe(R"(
subscription Either
monitoring
select default
where URL extends "http://a.example.org/" and modified self
   or URL extends "http://overlap.example.org/" and modified self
   or self contains "xyleme"
report when immediate
)",
                             "u@x")
                  .ok());
  // Three disjuncts => three complex events for one query.
  EXPECT_EQ(monitor_.mqp().matcher().size(), 3u);

  // Site A page modified: one notification.
  monitor_.ProcessFetch("http://a.example.org/p.xml", "<p>1</p>");
  EXPECT_EQ(monitor_.stats().notifications, 0u);  // New, not modified.
  monitor_.ProcessFetch("http://a.example.org/p.xml", "<p>2</p>");
  EXPECT_EQ(monitor_.stats().notifications, 1u);

  // A page matching TWO disjuncts (overlap URL + xyleme keyword) must
  // still notify the query only once.
  monitor_.ProcessFetch("http://overlap.example.org/q.xml",
                        "<p>about xyleme</p>");
  EXPECT_EQ(monitor_.stats().notifications, 2u);  // keyword disjunct (new doc)
  monitor_.ProcessFetch("http://overlap.example.org/q.xml",
                        "<p>more about xyleme v2</p>");
  EXPECT_EQ(monitor_.stats().notifications, 3u);  // both disjuncts, one notif
}

TEST_F(SystemTest, WarehousePersistenceKeepsChangeSemanticsAcrossRestart) {
  auto dir = std::filesystem::temp_directory_path();
  std::string subs_path = dir / ("xymon_subs_" + std::to_string(::getpid()));
  std::string wh_path = dir / ("xymon_wh_" + std::to_string(::getpid()));
  std::filesystem::remove(subs_path);
  std::filesystem::remove(wh_path);

  XylemeMonitor::Options options;
  options.storage_path = subs_path;
  options.warehouse_path = wh_path;
  {
    SimClock clock(0);
    XylemeMonitor m1(&clock, options);
    ASSERT_TRUE(m1
                    .Subscribe(R"(
subscription P
monitoring
select default
where URL extends "http://shop.example.org/" and new Product
report when immediate
)",
                               "u@x")
                    .ok());
    m1.ProcessFetch("http://shop.example.org/c.xml",
                    "<c><Product id=\"1\"/></c>");
    EXPECT_EQ(m1.stats().notifications, 1u);
  }
  // Restart: the same page refetched unchanged must NOT count as new —
  // without warehouse persistence it would re-notify.
  SimClock clock(10);
  XylemeMonitor m2(&clock, options);
  m2.ProcessFetch("http://shop.example.org/c.xml",
                  "<c><Product id=\"1\"/></c>");
  EXPECT_EQ(m2.stats().notifications, 0u);
  // A genuinely new product after restart notifies exactly once.
  m2.ProcessFetch("http://shop.example.org/c.xml",
                  "<c><Product id=\"1\"/><Product id=\"2\"/></c>");
  EXPECT_EQ(m2.stats().notifications, 1u);
  std::filesystem::remove(subs_path);
  std::filesystem::remove(wh_path);
}

TEST_F(SystemTest, StatusReportDescribesEveryModule) {
  ASSERT_TRUE(monitor_.Subscribe(kMyXyleme, "u@x").ok());
  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>1</p>");
  monitor_.ProcessFetch("http://inria.fr/Xy/i.html", "<p>2</p>");

  std::string status = monitor_.StatusReport();
  auto doc = xml::Parse(status);
  ASSERT_TRUE(doc.ok()) << status;
  EXPECT_EQ(doc->root->name(), "XylemeStatus");
  for (const char* section :
       {"DocumentFlow", "Warehouse", "Subscriptions", "MQP", "TriggerEngine",
        "Reporter", "Outbox", "WebPortal"}) {
    EXPECT_NE(doc->root->FindChild(section), nullptr) << section;
  }
  EXPECT_EQ(*doc->root->FindChild("DocumentFlow")->GetAttribute("processed"),
            "2");
  EXPECT_EQ(*doc->root->FindChild("Subscriptions")->GetAttribute("count"),
            "1");
  EXPECT_EQ(*doc->root->FindChild("MQP")->GetAttribute("algorithm"), "aes");
}

}  // namespace
}  // namespace xymon::system
