#ifndef XYMON_TESTS_TIME_SCALE_H_
#define XYMON_TESTS_TIME_SCALE_H_

#include <cstdint>
#include <cstdlib>

namespace xymon {

/// Multiplier for every wall-clock bound a test hard-codes (stage-stall
/// durations, batch deadlines, heartbeat timeouts, spin-wait ceilings).
/// Sanitizer and heavily loaded CI machines set XYMON_TEST_TIME_SCALE=3 (or
/// more) instead of the tests guessing one worst-case constant for every
/// environment; unset or non-positive means 1.0.
inline double TestTimeScale() {
  static const double scale = [] {
    const char* raw = std::getenv("XYMON_TEST_TIME_SCALE");
    if (raw == nullptr) return 1.0;
    double parsed = std::atof(raw);
    return parsed > 0.0 ? parsed : 1.0;
  }();
  return scale;
}

/// A millisecond bound scaled by TestTimeScale().
inline uint32_t ScaledMs(uint32_t ms) {
  return static_cast<uint32_t>(static_cast<double>(ms) * TestTimeScale());
}

}  // namespace xymon

#endif  // XYMON_TESTS_TIME_SCALE_H_
