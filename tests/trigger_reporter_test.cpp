#include <gtest/gtest.h>

#include "src/reporter/outbox.h"
#include "src/reporter/reporter.h"
#include "src/trigger/trigger_engine.h"

namespace xymon {
namespace {

using reporter::Notification;
using reporter::Outbox;
using reporter::Reporter;
using sublang::Frequency;
using sublang::ReportCondition;
using sublang::ReportSpec;
using trigger::TriggerEngine;

// ----------------------------------------------------------- TriggerEngine --

TEST(TriggerEngineTest, PeriodicFiresOnSchedule) {
  TriggerEngine engine;
  int fired = 0;
  engine.AddPeriodic(0, 100, [&](Timestamp) { ++fired; });
  engine.Tick(50);
  EXPECT_EQ(fired, 0);
  engine.Tick(100);
  EXPECT_EQ(fired, 1);
  engine.Tick(150);
  EXPECT_EQ(fired, 1);
  engine.Tick(200);
  EXPECT_EQ(fired, 2);
}

TEST(TriggerEngineTest, CatchUpFiresOncePerTick) {
  TriggerEngine engine;
  int fired = 0;
  engine.AddPeriodic(0, 100, [&](Timestamp) { ++fired; });
  engine.Tick(1000);  // Ten periods elapsed.
  EXPECT_EQ(fired, 1);
  engine.Tick(1100);
  EXPECT_EQ(fired, 2);
}

TEST(TriggerEngineTest, NotificationTriggersFireByKey) {
  TriggerEngine engine;
  int a = 0, b = 0;
  engine.AddNotificationTrigger("Sub.Q1", [&](Timestamp) { ++a; });
  engine.AddNotificationTrigger("Sub.Q2", [&](Timestamp) { ++b; });
  engine.NotifyEvent("Sub.Q1", 1);
  engine.NotifyEvent("Sub.Q1", 2);
  engine.NotifyEvent("Other", 3);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(engine.firings(), 2u);
}

TEST(TriggerEngineTest, RemoveStopsFiring) {
  TriggerEngine engine;
  int fired = 0;
  auto p = engine.AddPeriodic(0, 10, [&](Timestamp) { ++fired; });
  auto n = engine.AddNotificationTrigger("k", [&](Timestamp) { ++fired; });
  ASSERT_TRUE(engine.Remove(p).ok());
  ASSERT_TRUE(engine.Remove(n).ok());
  EXPECT_TRUE(engine.Remove(n).IsNotFound());
  engine.Tick(100);
  engine.NotifyEvent("k", 100);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.trigger_count(), 0u);
}

TEST(TriggerEngineTest, ActionMayRemoveTriggersSafely) {
  TriggerEngine engine;
  TriggerEngine::TriggerId id2 = 0;
  int fired = 0;
  engine.AddNotificationTrigger("k", [&](Timestamp) {
    ++fired;
    (void)engine.Remove(id2);
  });
  id2 = engine.AddNotificationTrigger("k", [&](Timestamp) { ++fired; });
  engine.NotifyEvent("k", 1);
  EXPECT_EQ(fired, 1);  // Second trigger removed by the first's action.
}

// ----------------------------------------------------------------- Outbox --

TEST(OutboxTest, UnlimitedSendsImmediately) {
  Outbox outbox;
  outbox.Send({"a@x", "subj", "body", 100});
  EXPECT_EQ(outbox.sent_count(), 1u);
  ASSERT_NE(outbox.last(), nullptr);
  EXPECT_EQ(outbox.last()->to, "a@x");
  EXPECT_EQ(outbox.last()->body, "body");
}

TEST(OutboxTest, DailyCapacityQueuesOverflow) {
  Outbox outbox(Outbox::Options{2, true});
  for (int i = 0; i < 5; ++i) {
    outbox.Send({"u@x", "s", "b", 100});
  }
  EXPECT_EQ(outbox.sent_count(), 2u);
  EXPECT_EQ(outbox.queued_count(), 3u);
  // Next day, the backlog drains within capacity.
  outbox.Drain(100 + kDay);
  EXPECT_EQ(outbox.sent_count(), 4u);
  EXPECT_EQ(outbox.queued_count(), 1u);
  outbox.Drain(100 + 2 * kDay);
  EXPECT_EQ(outbox.sent_count(), 5u);
}

TEST(OutboxTest, BodylessModeCountsOnly) {
  Outbox outbox(Outbox::Options{0, false});
  outbox.Send({"u@x", "s", "big body", 1});
  EXPECT_EQ(outbox.sent_count(), 1u);
  EXPECT_TRUE(outbox.last()->body.empty());
}

// --------------------------------------------------------------- Reporter --

class ReporterTest : public ::testing::Test {
 protected:
  ReporterTest() : reporter_(&outbox_, nullptr) {}

  static ReportSpec CountSpec(uint64_t threshold) {
    ReportSpec spec;
    ReportCondition::Atom atom;
    atom.kind = ReportCondition::Atom::Kind::kCount;
    atom.cmp = alerters::Comparator::kGe;
    atom.count = threshold;
    spec.when.atoms.push_back(atom);
    return spec;
  }

  static Notification Notif(const std::string& sub, const std::string& query,
                            Timestamp t) {
    return Notification{sub, query, "<UpdatedPage url=\"http://x\"/>", t};
  }

  Outbox outbox_;
  Reporter reporter_;
};

TEST_F(ReporterTest, CountConditionBuffersThenFires) {
  ASSERT_TRUE(reporter_.AddSubscription("S", CountSpec(3), {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", 1));
  reporter_.AddNotification(Notif("S", "q", 2));
  EXPECT_EQ(reporter_.reports_generated(), 0u);
  EXPECT_EQ(reporter_.BufferedCount("S"), 2u);
  reporter_.AddNotification(Notif("S", "q", 3));
  EXPECT_EQ(reporter_.reports_generated(), 1u);
  EXPECT_EQ(reporter_.BufferedCount("S"), 0u);  // Report empties the buffer.
  EXPECT_EQ(outbox_.sent_count(), 1u);
  ASSERT_NE(reporter_.LastReport("S"), nullptr);
  EXPECT_NE(reporter_.LastReport("S")->xml.find("UpdatedPage"),
            std::string::npos);
}

TEST_F(ReporterTest, ImmediateFiresPerNotification) {
  ReportSpec spec;
  ReportCondition::Atom atom;
  atom.kind = ReportCondition::Atom::Kind::kImmediate;
  spec.when.atoms.push_back(atom);
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", 1));
  reporter_.AddNotification(Notif("S", "q", 2));
  EXPECT_EQ(reporter_.reports_generated(), 2u);
}

TEST_F(ReporterTest, NamedCountOnlyCountsThatQuery) {
  ReportSpec spec;
  ReportCondition::Atom atom;
  atom.kind = ReportCondition::Atom::Kind::kNamedCount;
  atom.cmp = alerters::Comparator::kGe;
  atom.count = 2;
  atom.query_name = "special";
  spec.when.atoms.push_back(atom);
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "other", 1));
  reporter_.AddNotification(Notif("S", "other", 2));
  reporter_.AddNotification(Notif("S", "special", 3));
  EXPECT_EQ(reporter_.reports_generated(), 0u);
  reporter_.AddNotification(Notif("S", "special", 4));
  EXPECT_EQ(reporter_.reports_generated(), 1u);
}

TEST_F(ReporterTest, PeriodicConditionFiresOnTickWithContent) {
  ReportSpec spec;
  ReportCondition::Atom atom;
  atom.kind = ReportCondition::Atom::Kind::kPeriodic;
  atom.frequency = Frequency::kDaily;
  spec.when.atoms.push_back(atom);
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());

  reporter_.Tick(kDay);  // Empty buffer: no report.
  EXPECT_EQ(reporter_.reports_generated(), 0u);
  // The periodic atom holds as soon as content arrives past the period.
  reporter_.AddNotification(Notif("S", "q", kDay + 1));
  EXPECT_EQ(reporter_.reports_generated(), 1u);
  // Within the next period, notifications only buffer.
  reporter_.AddNotification(Notif("S", "q", kDay + 2));
  EXPECT_EQ(reporter_.reports_generated(), 1u);
  EXPECT_EQ(reporter_.BufferedCount("S"), 1u);
  // The next period boundary flushes on Tick.
  reporter_.Tick(2 * kDay + 2);
  EXPECT_EQ(reporter_.reports_generated(), 2u);
}

TEST_F(ReporterTest, DisjunctionFiresOnAnyAtom) {
  ReportSpec spec = CountSpec(100);
  ReportCondition::Atom imm;
  imm.kind = ReportCondition::Atom::Kind::kImmediate;
  spec.when.atoms.push_back(imm);
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", 1));
  EXPECT_EQ(reporter_.reports_generated(), 1u);  // immediate won.
}

TEST_F(ReporterTest, AtmostCountDropsOverflow) {
  ReportSpec spec = CountSpec(1000);  // Never fires by count.
  spec.atmost_count = 3;
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());
  for (int i = 0; i < 10; ++i) {
    reporter_.AddNotification(Notif("S", "q", i));
  }
  EXPECT_EQ(reporter_.BufferedCount("S"), 3u);
  EXPECT_EQ(reporter_.notifications_dropped(), 7u);
}

TEST_F(ReporterTest, AtmostRateDefersReports) {
  ReportSpec spec = CountSpec(1);  // Fires on every notification...
  spec.atmost_rate = Frequency::kDaily;  // ...but at most daily.
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", 10));
  EXPECT_EQ(reporter_.reports_generated(), 1u);
  reporter_.AddNotification(Notif("S", "q", 20));
  reporter_.AddNotification(Notif("S", "q", 30));
  EXPECT_EQ(reporter_.reports_generated(), 1u);  // Deferred.
  reporter_.Tick(10 + kDay);
  EXPECT_EQ(reporter_.reports_generated(), 2u);  // Pending report released.
  EXPECT_EQ(reporter_.BufferedCount("S"), 0u);
}

TEST_F(ReporterTest, ArchiveRetainsAndGarbageCollects) {
  ReportSpec spec = CountSpec(1);
  spec.archive = Frequency::kWeekly;
  ASSERT_TRUE(reporter_.AddSubscription("S", spec, {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", 0));
  reporter_.AddNotification(Notif("S", "q", kDay));
  EXPECT_EQ(reporter_.ArchivedReports("S").size(), 2u);
  // Just past the first report's retention (second still within).
  reporter_.Tick(kWeek + 2);
  EXPECT_EQ(reporter_.ArchivedReports("S").size(), 1u);
}

TEST_F(ReporterTest, NoArchiveClauseKeepsOnlyLastReport) {
  ASSERT_TRUE(reporter_.AddSubscription("S", CountSpec(1), {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", 1));
  EXPECT_TRUE(reporter_.ArchivedReports("S").empty());
  EXPECT_NE(reporter_.LastReport("S"), nullptr);
}

TEST_F(ReporterTest, VirtualListenersGetCopies) {
  ASSERT_TRUE(reporter_.AddSubscription("Main", CountSpec(100), {"m@x"}, 0).ok());
  ASSERT_TRUE(reporter_.AddSubscription("Virt", CountSpec(2), {"v@x"}, 0).ok());
  ASSERT_TRUE(reporter_.AddVirtualListener("Virt", "Main", "q").ok());

  reporter_.AddNotification(Notif("Main", "q", 1));
  reporter_.AddNotification(Notif("Main", "other", 2));  // Not subscribed.
  EXPECT_EQ(reporter_.BufferedCount("Virt"), 1u);
  reporter_.AddNotification(Notif("Main", "q", 3));
  // Virt reached its own threshold and reported independently of Main.
  EXPECT_EQ(reporter_.reports_generated(), 1u);
  EXPECT_EQ(reporter_.BufferedCount("Main"), 3u);
}

TEST_F(ReporterTest, RemoveSubscriptionStopsDelivery) {
  ASSERT_TRUE(reporter_.AddSubscription("S", CountSpec(1), {"u@x"}, 0).ok());
  ASSERT_TRUE(reporter_.RemoveSubscription("S").ok());
  EXPECT_TRUE(reporter_.RemoveSubscription("S").IsNotFound());
  reporter_.AddNotification(Notif("S", "q", 1));
  EXPECT_EQ(reporter_.reports_generated(), 0u);
}

TEST_F(ReporterTest, DuplicateRegistrationRejected) {
  ASSERT_TRUE(reporter_.AddSubscription("S", CountSpec(1), {"u@x"}, 0).ok());
  EXPECT_TRUE(
      reporter_.AddSubscription("S", CountSpec(2), {"u@x"}, 0).IsAlreadyExists());
}

TEST_F(ReporterTest, MalformedPayloadPreservedAsRaw) {
  ASSERT_TRUE(reporter_.AddSubscription("S", CountSpec(1), {"u@x"}, 0).ok());
  reporter_.AddNotification(Notification{"S", "q", "<broken", 1});
  ASSERT_NE(reporter_.LastReport("S"), nullptr);
  EXPECT_NE(reporter_.LastReport("S")->xml.find("raw"), std::string::npos);
}

TEST_F(ReporterTest, ReportXmlCarriesSubscriptionAndDate) {
  ASSERT_TRUE(reporter_.AddSubscription("S", CountSpec(1), {"u@x"}, 0).ok());
  reporter_.AddNotification(Notif("S", "q", kDay));
  const std::string& xml = reporter_.LastReport("S")->xml;
  EXPECT_NE(xml.find("subscription=\"S\""), std::string::npos);
  EXPECT_NE(xml.find("1970-01-02"), std::string::npos);
}

TEST(ReporterQueryTest, ReportQueryFiltersTheBuffer) {
  // The Xyleme Reporter step (§3): the report query runs over the
  // notification buffer and shapes the delivered document.
  Outbox outbox;
  query::QueryEngine engine(nullptr);
  Reporter reporter(&outbox, &engine);

  ReportSpec spec;
  ReportCondition::Atom atom;
  atom.kind = ReportCondition::Atom::Kind::kCount;
  atom.cmp = alerters::Comparator::kGe;
  atom.count = 3;
  spec.when.atoms.push_back(atom);
  // Keep only the UpdatedPage notifications, drop the Member ones.
  spec.query_text = "select X from self//UpdatedPage X";
  ASSERT_TRUE(reporter.AddSubscription("S", spec, {"u@x"}, 0).ok());

  reporter.AddNotification(
      Notification{"S", "q", "<UpdatedPage url=\"http://a\"/>", 1});
  reporter.AddNotification(
      Notification{"S", "q", "<Member><name>x</name></Member>", 2});
  reporter.AddNotification(
      Notification{"S", "q", "<UpdatedPage url=\"http://b\"/>", 3});

  ASSERT_EQ(reporter.reports_generated(), 1u);
  const std::string& body = outbox.last()->body;
  EXPECT_NE(body.find("http://a"), std::string::npos);
  EXPECT_NE(body.find("http://b"), std::string::npos);
  EXPECT_EQ(body.find("Member"), std::string::npos) << body;
}

TEST(ReporterQueryTest, BrokenReportQueryFallsBackToRawBuffer) {
  Outbox outbox;
  query::QueryEngine engine(nullptr);
  Reporter reporter(&outbox, &engine);
  ReportSpec spec;
  ReportCondition::Atom atom;
  atom.kind = ReportCondition::Atom::Kind::kImmediate;
  spec.when.atoms.push_back(atom);
  spec.query_text = "select ~~~ garbage";
  ASSERT_TRUE(reporter.AddSubscription("S", spec, {"u@x"}, 0).ok());
  reporter.AddNotification(Notification{"S", "q", "<n>data</n>", 1});
  // The data must not be swallowed by a broken query.
  EXPECT_NE(outbox.last()->body.find("data"), std::string::npos);
}

// -------------------------------------------------------------- WebPortal --

TEST(WebPortalTest, PublishAndGetByPath) {
  reporter::WebPortal portal;
  std::string path = portal.Publish("Sub", 100, "<Report n=\"1\"/>");
  EXPECT_EQ(path, "/reports/Sub/0");
  portal.Publish("Sub", 200, "<Report n=\"2\"/>");
  EXPECT_EQ(portal.Get("/reports/Sub/0"), "<Report n=\"1\"/>");
  EXPECT_EQ(portal.Get("/reports/Sub/1"), "<Report n=\"2\"/>");
  EXPECT_EQ(portal.Get("/reports/Sub/latest"), "<Report n=\"2\"/>");
  EXPECT_EQ(portal.Get("/reports/Sub/9"), std::nullopt);
  EXPECT_EQ(portal.Get("/reports/Nope/0"), std::nullopt);
  EXPECT_EQ(portal.Get("/other/x"), std::nullopt);
  EXPECT_EQ(portal.published_count(), 2u);
}

TEST(WebPortalTest, RetentionDropsOldReportsButKeepsSequence) {
  reporter::WebPortal portal(/*max_per_subscription=*/2);
  portal.Publish("S", 1, "a");
  portal.Publish("S", 2, "b");
  portal.Publish("S", 3, "c");
  EXPECT_EQ(portal.ReportCount("S"), 2u);
  EXPECT_EQ(portal.Get("/reports/S/0"), std::nullopt);  // Fell off.
  EXPECT_EQ(portal.Get("/reports/S/2"), "c");
}

TEST(WebPortalTest, IndexListsEverything) {
  reporter::WebPortal portal;
  portal.Publish("Alpha", 1, "x");
  portal.Publish("Beta", 2, "y");
  std::string index = portal.RenderIndex();
  EXPECT_NE(index.find("Alpha"), std::string::npos);
  EXPECT_NE(index.find("/reports/Beta/0"), std::string::npos);
}

TEST_F(ReporterTest, PublishClauseRoutesToPortalNotOutbox) {
  reporter::WebPortal portal;
  reporter_.set_web_portal(&portal);
  ReportSpec spec = CountSpec(1);
  spec.publish_web = true;
  ASSERT_TRUE(reporter_.AddSubscription("Web", spec, {"u@x"}, 0).ok());
  ASSERT_TRUE(reporter_.AddSubscription("Mail", CountSpec(1), {"m@x"}, 0).ok());

  reporter_.AddNotification(Notif("Web", "q", 1));
  reporter_.AddNotification(Notif("Mail", "q", 2));
  EXPECT_EQ(portal.published_count(), 1u);
  EXPECT_EQ(outbox_.sent_count(), 1u);
  EXPECT_EQ(outbox_.last()->to, "m@x");
  ASSERT_TRUE(portal.Get("/reports/Web/latest").has_value());
}

}  // namespace
}  // namespace xymon
