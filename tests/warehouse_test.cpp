#include <gtest/gtest.h>

#include <filesystem>

#include "src/warehouse/warehouse.h"
#include "src/xml/parser.h"

namespace xymon::warehouse {
namespace {

constexpr char kCatalogV1[] =
    "<!DOCTYPE catalog SYSTEM \"http://shop/cat.dtd\">"
    "<catalog><Product><name>cam</name></Product></catalog>";
constexpr char kCatalogV2[] =
    "<!DOCTYPE catalog SYSTEM \"http://shop/cat.dtd\">"
    "<catalog><Product><name>cam</name></Product>"
    "<Product><name>tv</name></Product></catalog>";

TEST(WarehouseTest, FirstFetchIsNew) {
  Warehouse wh;
  auto r = wh.Ingest({"http://a/x.xml", "<a><b/></a>"}, 100);
  EXPECT_EQ(r.meta.status, DocStatus::kNew);
  EXPECT_TRUE(r.meta.is_xml);
  EXPECT_EQ(r.meta.url, "http://a/x.xml");
  EXPECT_EQ(r.meta.filename, "x.xml");
  EXPECT_EQ(r.meta.last_accessed, 100);
  EXPECT_EQ(r.meta.last_updated, 100);
  ASSERT_NE(r.current, nullptr);
  EXPECT_EQ(r.current->root->name(), "a");
  // All elements of a fresh document are "new" for the XML alerter.
  EXPECT_EQ(r.diff.changes.size(), 2u);
}

TEST(WarehouseTest, RefetchSameContentIsUnchanged) {
  Warehouse wh;
  wh.Ingest({"http://a/", "<a/>"}, 100);
  auto r = wh.Ingest({"http://a/", "<a/>"}, 200);
  EXPECT_EQ(r.meta.status, DocStatus::kUnchanged);
  EXPECT_EQ(r.meta.last_accessed, 200);
  EXPECT_EQ(r.meta.last_updated, 100);
  EXPECT_TRUE(r.diff.changes.empty());
}

TEST(WarehouseTest, ChangedContentIsUpdatedWithDiff) {
  Warehouse wh;
  wh.Ingest({"http://shop/c.xml", kCatalogV1}, 100);
  auto r = wh.Ingest({"http://shop/c.xml", kCatalogV2}, 200);
  EXPECT_EQ(r.meta.status, DocStatus::kUpdated);
  EXPECT_EQ(r.meta.last_updated, 200);
  ASSERT_NE(r.previous, nullptr);
  ASSERT_NE(r.current, nullptr);
  // The inserted Product (and its name) are "new"; catalog is "updated".
  size_t new_products = 0, updated_catalogs = 0;
  for (const auto& c : r.diff.changes) {
    if (c.op == xmldiff::ChangeOp::kNew && c.element->name() == "Product") {
      ++new_products;
    }
    if (c.op == xmldiff::ChangeOp::kUpdated && c.element->name() == "catalog") {
      ++updated_catalogs;
    }
  }
  EXPECT_EQ(new_products, 1u);
  EXPECT_EQ(updated_catalogs, 1u);
}

TEST(WarehouseTest, XidsStableAcrossVersions) {
  Warehouse wh;
  auto r1 = wh.Ingest({"http://shop/c.xml", kCatalogV1}, 100);
  uint64_t product_xid = r1.current->root->FindChild("Product")->xid();
  ASSERT_NE(product_xid, 0u);
  auto r2 = wh.Ingest({"http://shop/c.xml", kCatalogV2}, 200);
  EXPECT_EQ(r2.current->root->FindChild("Product")->xid(), product_xid);
}

TEST(WarehouseTest, DocIdsAreStablePerUrl) {
  Warehouse wh;
  auto a1 = wh.Ingest({"http://a/", "<a/>"}, 1);
  auto b = wh.Ingest({"http://b/", "<b/>"}, 2);
  auto a2 = wh.Ingest({"http://a/", "<a2/>"}, 3);
  EXPECT_NE(a1.meta.docid, b.meta.docid);
  EXPECT_EQ(a1.meta.docid, a2.meta.docid);
}

TEST(WarehouseTest, DtdIdsDensePerDistinctDtd) {
  Warehouse wh;
  auto a = wh.Ingest({"http://1", kCatalogV1}, 1);
  auto b = wh.Ingest({"http://2", kCatalogV1}, 1);
  auto c = wh.Ingest(
      {"http://3", "<!DOCTYPE x SYSTEM \"http://other.dtd\"><x/>"}, 1);
  EXPECT_EQ(a.meta.dtdid, b.meta.dtdid);
  EXPECT_NE(a.meta.dtdid, c.meta.dtdid);
  EXPECT_EQ(a.meta.dtd_url, "http://shop/cat.dtd");
  EXPECT_EQ(a.meta.doctype_name, "catalog");
}

TEST(WarehouseTest, HtmlTrackedBySignatureOnly) {
  Warehouse wh;
  auto r1 = wh.Ingest({"http://h/", "<html><p>unclosed"}, 1);
  EXPECT_FALSE(r1.meta.is_xml);
  EXPECT_EQ(r1.current, nullptr);
  EXPECT_EQ(r1.meta.status, DocStatus::kNew);
  auto r2 = wh.Ingest({"http://h/", "<html><p>unclosed"}, 2);
  EXPECT_EQ(r2.meta.status, DocStatus::kUnchanged);
  auto r3 = wh.Ingest({"http://h/", "<html><p>different"}, 3);
  EXPECT_EQ(r3.meta.status, DocStatus::kUpdated);
}

TEST(WarehouseTest, HtmlPageBecomingXmlIsAllNew) {
  Warehouse wh;
  wh.Ingest({"http://m/", "plain text not xml"}, 1);
  auto r = wh.Ingest({"http://m/", "<a><b/></a>"}, 2);
  EXPECT_TRUE(r.meta.is_xml);
  EXPECT_EQ(r.meta.status, DocStatus::kUpdated);
  EXPECT_EQ(r.diff.changes.size(), 2u);  // Both elements new.
}

TEST(WarehouseTest, MarkDeletedRaisesDeletedChanges) {
  Warehouse wh;
  wh.Ingest({"http://d/", "<a><b/></a>"}, 1);
  auto r = wh.MarkDeleted("http://d/", 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->meta.status, DocStatus::kDeleted);
  EXPECT_EQ(r->diff.changes.size(), 2u);
  for (const auto& c : r->diff.changes) {
    EXPECT_EQ(c.op, xmldiff::ChangeOp::kDeleted);
  }
  EXPECT_TRUE(wh.MarkDeleted("http://unknown/", 3).status().IsNotFound());
}

TEST(WarehouseTest, DomainClassification) {
  DomainClassifier classifier;
  classifier.AddRule({"commerce", "catalog", "", ""});
  classifier.AddRule({"culture", "", "museum", ""});
  classifier.AddRule({"xyleme", "", "", "inria.fr/Xy"});
  Warehouse wh(&classifier);

  EXPECT_EQ(wh.Ingest({"http://s/c.xml", kCatalogV1}, 1).meta.domain,
            "commerce");
  EXPECT_EQ(wh.Ingest({"http://m/", "<museum/>"}, 1).meta.domain, "culture");
  EXPECT_EQ(wh.Ingest({"http://inria.fr/Xy/p.xml", "<page/>"}, 1).meta.domain,
            "xyleme");
  EXPECT_EQ(wh.Ingest({"http://other/", "<z/>"}, 1).meta.domain, "");
}

TEST(WarehouseTest, DomainCollectionsForQueries) {
  DomainClassifier classifier;
  classifier.AddRule({"commerce", "catalog", "", ""});
  Warehouse wh(&classifier);
  wh.Ingest({"http://1", kCatalogV1}, 1);
  wh.Ingest({"http://2", kCatalogV2}, 1);
  wh.Ingest({"http://3", "<other/>"}, 1);
  wh.Ingest({"http://4", "html not xml <"}, 1);

  EXPECT_EQ(wh.DocumentsInDomain("commerce").size(), 2u);
  EXPECT_EQ(wh.DocumentsInDomain("").size(), 3u);  // All XML docs.
  EXPECT_EQ(wh.DocumentsInDomain("nope").size(), 0u);
}

TEST(WarehouseTest, DeletedDocsLeaveDomainCollections) {
  DomainClassifier classifier;
  classifier.AddRule({"commerce", "catalog", "", ""});
  Warehouse wh(&classifier);
  wh.Ingest({"http://1", kCatalogV1}, 1);
  ASSERT_TRUE(wh.MarkDeleted("http://1", 2).ok());
  EXPECT_EQ(wh.DocumentsInDomain("commerce").size(), 0u);
}

TEST(WarehouseTest, Getters) {
  Warehouse wh;
  EXPECT_EQ(wh.GetMeta("http://x"), nullptr);
  EXPECT_EQ(wh.GetDocument("http://x"), nullptr);
  wh.Ingest({"http://x", "<a/>"}, 1);
  ASSERT_NE(wh.GetMeta("http://x"), nullptr);
  ASSERT_NE(wh.GetDocument("http://x"), nullptr);
  EXPECT_EQ(wh.document_count(), 1u);
}


// ---------------------------------------------------------- VersionChain --

TEST(VersionChainTest, ReconstructsEveryRetainedVersion) {
  Warehouse wh;
  wh.EnableVersioning(8);
  const char* versions[] = {
      "<a><b>1</b></a>",
      "<a><b>2</b></a>",
      "<a><b>2</b><c/></a>",
      "<a><c/></a>",
  };
  Timestamp t = 100;
  for (const char* v : versions) {
    wh.Ingest({"http://v/", v}, t);
    t += 10;
  }
  ASSERT_EQ(wh.VersionCount("http://v/"), 4u);
  for (size_t i = 0; i < 4; ++i) {
    auto doc = wh.GetVersion("http://v/", i);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    auto expected = xml::Parse(versions[i]);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE((*doc)->EqualsIgnoringXids(*expected->root)) << i;
    EXPECT_EQ(*wh.GetVersionTime("http://v/", i), 100 + 10 * (int)i);
  }
  EXPECT_TRUE(wh.GetVersion("http://v/", 4).status().IsNotFound());
}

TEST(VersionChainTest, OldVersionsFoldIntoSnapshot) {
  Warehouse wh;
  wh.EnableVersioning(/*max_deltas=*/3);
  for (int i = 0; i < 10; ++i) {
    wh.Ingest({"http://v/", "<a><n>" + std::to_string(i) + "</n></a>"}, i);
  }
  // Snapshot + 3 deltas = 4 reconstructible versions (6..9).
  ASSERT_EQ(wh.VersionCount("http://v/"), 4u);
  auto oldest = wh.GetVersion("http://v/", 0);
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ((*oldest)->TextContent(), "6");
  auto newest = wh.GetVersion("http://v/", 3);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ((*newest)->TextContent(), "9");
}

TEST(VersionChainTest, UnchangedFetchAddsNoVersion) {
  Warehouse wh;
  wh.EnableVersioning();
  wh.Ingest({"http://v/", "<a/>"}, 1);
  wh.Ingest({"http://v/", "<a/>"}, 2);
  EXPECT_EQ(wh.VersionCount("http://v/"), 1u);
}

TEST(VersionChainTest, DisabledByDefault) {
  Warehouse wh;
  wh.Ingest({"http://v/", "<a/>"}, 1);
  EXPECT_EQ(wh.VersionCount("http://v/"), 0u);
  EXPECT_TRUE(wh.GetVersion("http://v/", 0).status().IsNotFound());
}

TEST(VersionChainTest, CurrentVersionMatchesLiveDocument) {
  Warehouse wh;
  wh.EnableVersioning();
  wh.Ingest({"http://v/", "<a><b>x</b></a>"}, 1);
  wh.Ingest({"http://v/", "<a><b>y</b><c>z</c></a>"}, 2);
  auto last = wh.GetVersion("http://v/", wh.VersionCount("http://v/") - 1);
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(
      (*last)->EqualsIgnoringXids(*wh.GetDocument("http://v/")->root));
}


// ------------------------------------------------------------- Persistence --

class WarehousePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("xymon_wh_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(WarehousePersistenceTest, DocumentsAndMetadataSurviveRestart) {
  uint64_t docid;
  uint32_t dtdid;
  uint64_t product_xid;
  {
    Warehouse wh;
    ASSERT_TRUE(wh.AttachStorage(path_).ok());
    auto r = wh.Ingest({"http://shop/c.xml", kCatalogV1}, 100);
    docid = r.meta.docid;
    dtdid = r.meta.dtdid;
    product_xid = r.current->root->FindChild("Product")->xid();
    wh.Ingest({"http://h/", "not xml <"}, 200);
  }
  Warehouse wh;
  ASSERT_TRUE(wh.AttachStorage(path_).ok());
  EXPECT_EQ(wh.document_count(), 2u);
  const DocMeta* meta = wh.GetMeta("http://shop/c.xml");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->docid, docid);
  EXPECT_EQ(meta->dtdid, dtdid);
  EXPECT_EQ(meta->last_updated, 100);
  EXPECT_EQ(meta->doctype_name, "catalog");
  const xml::Document* doc = wh.GetDocument("http://shop/c.xml");
  ASSERT_NE(doc, nullptr);
  // XIDs survive the restart — diffs keep element identity.
  EXPECT_EQ(doc->root->FindChild("Product")->xid(), product_xid);
  // HTML page kept as signature-only metadata.
  ASSERT_NE(wh.GetMeta("http://h/"), nullptr);
  EXPECT_FALSE(wh.GetMeta("http://h/")->is_xml);
  EXPECT_EQ(wh.GetDocument("http://h/"), nullptr);
}

TEST_F(WarehousePersistenceTest, ChangeDetectionContinuesAfterRestart) {
  {
    Warehouse wh;
    ASSERT_TRUE(wh.AttachStorage(path_).ok());
    wh.Ingest({"http://shop/c.xml", kCatalogV1}, 100);
  }
  Warehouse wh;
  ASSERT_TRUE(wh.AttachStorage(path_).ok());
  // Same content: unchanged (signature recovered).
  EXPECT_EQ(wh.Ingest({"http://shop/c.xml", kCatalogV1}, 200).meta.status,
            DocStatus::kUnchanged);
  // Changed content: diffs against the *recovered* version, preserving XIDs.
  auto r = wh.Ingest({"http://shop/c.xml", kCatalogV2}, 300);
  EXPECT_EQ(r.meta.status, DocStatus::kUpdated);
  size_t new_products = 0;
  for (const auto& c : r.diff.changes) {
    if (c.op == xmldiff::ChangeOp::kNew && c.element->name() == "Product") {
      ++new_products;
    }
  }
  EXPECT_EQ(new_products, 1u);
}

TEST_F(WarehousePersistenceTest, CountersDoNotRegress) {
  {
    Warehouse wh;
    ASSERT_TRUE(wh.AttachStorage(path_).ok());
    wh.Ingest({"http://a/", "<a/>"}, 1);
    wh.Ingest({"http://b/", kCatalogV1}, 1);
  }
  Warehouse wh;
  ASSERT_TRUE(wh.AttachStorage(path_).ok());
  auto c = wh.Ingest({"http://c/", "<c/>"}, 2);
  // Fresh DOCIDs continue past the recovered ones.
  EXPECT_GT(c.meta.docid, wh.GetMeta("http://b/")->docid);
  // A known DTD keeps its dense id.
  auto b_again = wh.Ingest({"http://b2/", kCatalogV1}, 2);
  EXPECT_EQ(b_again.meta.dtdid, wh.GetMeta("http://b/")->dtdid);
}

TEST_F(WarehousePersistenceTest, DeletionPersists) {
  {
    Warehouse wh;
    ASSERT_TRUE(wh.AttachStorage(path_).ok());
    wh.Ingest({"http://d/", "<a/>"}, 1);
    ASSERT_TRUE(wh.MarkDeleted("http://d/", 2).ok());
  }
  Warehouse wh;
  ASSERT_TRUE(wh.AttachStorage(path_).ok());
  ASSERT_NE(wh.GetMeta("http://d/"), nullptr);
  EXPECT_EQ(wh.GetMeta("http://d/")->status, DocStatus::kDeleted);
  EXPECT_TRUE(wh.DocumentsInDomain("").empty());
}

TEST(DocStatusTest, Names) {
  EXPECT_STREQ(DocStatusName(DocStatus::kNew), "new");
  EXPECT_STREQ(DocStatusName(DocStatus::kUpdated), "updated");
  EXPECT_STREQ(DocStatusName(DocStatus::kUnchanged), "unchanged");
  EXPECT_STREQ(DocStatusName(DocStatus::kDeleted), "deleted");
}

}  // namespace
}  // namespace xymon::warehouse
