#include <gtest/gtest.h>

#include "src/alerters/html_alerter.h"
#include "src/webstub/crawler.h"
#include "src/webstub/synthetic_web.h"
#include "src/xml/parser.h"

namespace xymon::webstub {
namespace {

TEST(SyntheticWebTest, PagesAreDeterministic) {
  SyntheticWeb a(42), b(42);
  a.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 10);
  b.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 10);
  EXPECT_EQ(a.Fetch("http://s/c.xml"), b.Fetch("http://s/c.xml"));
  a.Step();
  b.Step();
  EXPECT_EQ(a.Fetch("http://s/c.xml"), b.Fetch("http://s/c.xml"));
}

TEST(SyntheticWebTest, UnknownUrlIs404) {
  SyntheticWeb web(1);
  EXPECT_EQ(web.Fetch("http://nope/"), std::nullopt);
}

TEST(SyntheticWebTest, GeneratedXmlPagesParse) {
  SyntheticWeb web(7);
  web.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 8);
  web.AddMembersPage("http://s/m.xml", 4);
  web.AddNewsPage("http://s/n.xml", {"xyleme"});
  for (int step = 0; step < 5; ++step) {
    for (const char* url : {"http://s/c.xml", "http://s/m.xml",
                            "http://s/n.xml"}) {
      auto body = web.Fetch(url);
      ASSERT_TRUE(body.has_value());
      auto doc = xml::Parse(*body);
      EXPECT_TRUE(doc.ok()) << url << ": " << doc.status().ToString();
    }
    web.Step();
  }
}

TEST(SyntheticWebTest, CatalogEvolvesByWindowAndReprice) {
  SyntheticWeb web(3);
  web.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 5,
                     /*change_rate=*/1.0);
  auto v0 = xml::Parse(*web.Fetch("http://s/c.xml"));
  web.Step();
  auto v1 = xml::Parse(*web.Fetch("http://s/c.xml"));
  ASSERT_TRUE(v0.ok() && v1.ok());
  // Same number of products, shifted window: first id changes.
  auto p0 = v0->root->FindChildren("Product");
  auto p1 = v1->root->FindChildren("Product");
  ASSERT_EQ(p0.size(), 5u);
  ASSERT_EQ(p1.size(), 5u);
  EXPECT_NE(*p0.front()->GetAttribute("id"), *p1.front()->GetAttribute("id"));
  // Overlap: v1's first product was v0's second.
  EXPECT_EQ(*p0[1]->GetAttribute("id"), *p1[0]->GetAttribute("id"));
}

TEST(SyntheticWebTest, MembersPageOnlyGrows) {
  SyntheticWeb web(5);
  web.AddMembersPage("http://s/m.xml", 3, /*change_rate=*/1.0);
  size_t last = 0;
  for (int step = 0; step < 4; ++step) {
    auto doc = xml::Parse(*web.Fetch("http://s/m.xml"));
    ASSERT_TRUE(doc.ok());
    size_t members = doc->root->FindChildren("Member").size();
    EXPECT_GE(members, last);
    last = members;
    web.Step();
  }
  EXPECT_EQ(last, 6u);  // 3 initial + 3 steps at rate 1.0.
}

TEST(SyntheticWebTest, ZeroChangeRateIsStatic) {
  SyntheticWeb web(9);
  web.AddHtmlPage("http://s/p.html", {}, /*change_rate=*/0.0);
  auto before = web.Fetch("http://s/p.html");
  for (int i = 0; i < 10; ++i) web.Step();
  EXPECT_EQ(web.Fetch("http://s/p.html"), before);
}

TEST(SyntheticWebTest, RemovePage404s) {
  SyntheticWeb web(2);
  web.AddHtmlPage("http://s/x.html");
  ASSERT_TRUE(web.Fetch("http://s/x.html").has_value());
  web.RemovePage("http://s/x.html");
  EXPECT_EQ(web.Fetch("http://s/x.html"), std::nullopt);
}

// ---------------------------------------------------------------- Crawler --

TEST(CrawlerTest, DiscoverAndFetchAllOnce) {
  SyntheticWeb web(4);
  for (int i = 0; i < 5; ++i) {
    web.AddHtmlPage("http://s/p" + std::to_string(i) + ".html");
  }
  Crawler crawler(&web, kDay);
  crawler.DiscoverAll(0);
  EXPECT_EQ(crawler.known_urls(), 5u);
  auto docs = crawler.FetchAllDue(0);
  EXPECT_EQ(docs.size(), 5u);
  // Nothing due again until the period elapses.
  EXPECT_TRUE(crawler.FetchAllDue(kDay - 1).empty());
  EXPECT_EQ(crawler.FetchAllDue(kDay).size(), 5u);
  EXPECT_EQ(crawler.fetch_count(), 10u);
}

TEST(CrawlerTest, RefreshHintsShortenThePeriod) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/hot.html");
  web.AddHtmlPage("http://s/cold.html");
  Crawler crawler(&web, kDay);
  crawler.SetRefreshHint("http://s/hot.html", kHour);
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  // One hour later only the hot page is due.
  auto due = crawler.FetchAllDue(kHour);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].url, "http://s/hot.html");
}

TEST(CrawlerTest, HintsNeverLengthenThePeriod) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/p.html");
  Crawler crawler(&web, kHour);
  crawler.SetRefreshHint("http://s/p.html", kWeek);  // Slower than default.
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  EXPECT_EQ(crawler.FetchAllDue(kHour).size(), 1u);
}

TEST(CrawlerTest, MostOverdueFirst) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/a.html");
  web.AddHtmlPage("http://s/b.html");
  Crawler crawler(&web, kDay);
  crawler.SetRefreshHint("http://s/b.html", kHour);
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  // At t=kDay, b has been due since kHour (most overdue), a since kDay.
  auto doc = crawler.FetchNext(kDay);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->url, "http://s/b.html");
}

TEST(CrawlerTest, LinkDiscoveryFollowsHubPages) {
  SyntheticWeb web(6);
  web.AddHubPage("http://portal.example.org/",
                 {"http://siteA.example.org/c.xml",
                  "http://siteB.example.org/news.xml",
                  "mailto:not-a-page", "/relative/skipped"});
  web.AddCatalogPage("http://siteA.example.org/c.xml",
                     "http://siteA.example.org/c.dtd", 3);
  web.AddNewsPage("http://siteB.example.org/news.xml");

  Crawler crawler(&web, kDay);
  // Seed only with the portal — the rest is discovered by following links.
  crawler.DiscoverFromPage(
      FetchedDoc{"seed", "<a href=\"http://portal.example.org/\">p</a>", 0},
      0);
  EXPECT_EQ(crawler.known_urls(), 1u);

  size_t discovered = 0;
  std::vector<std::string> fetched;
  while (auto doc = crawler.FetchNext(0)) {
    fetched.push_back(doc->url);
    discovered += crawler.DiscoverFromPage(*doc, 0);
  }
  EXPECT_EQ(discovered, 2u);  // Two absolute http links; junk ignored.
  ASSERT_EQ(fetched.size(), 3u);
  EXPECT_EQ(fetched[0], "http://portal.example.org/");
}

TEST(HtmlLinkTest, ExtractLinksFindsAbsoluteAnchors) {
  auto links = xymon::alerters::HtmlAlerter::ExtractLinks(
      "<a href=\"http://a.org/x\">x</a> "
      "<A HREF='https://b.org/'>y</A> "
      "<a href=\"/relative\">no</a> <a href=unquoted>no</a>");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], "http://a.org/x");
  EXPECT_EQ(links[1], "https://b.org/");
}

TEST(CrawlerTest, VanishedPagesAreForgotten) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/gone.html");
  Crawler crawler(&web, kDay);
  crawler.DiscoverAll(0);
  web.RemovePage("http://s/gone.html");
  EXPECT_EQ(crawler.FetchNext(0), std::nullopt);
  EXPECT_EQ(crawler.known_urls(), 0u);
}

TEST(CrawlerTest, LateDiscoveryAddsNewUrlsOnly) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/old.html");
  Crawler crawler(&web, kDay);
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  web.AddHtmlPage("http://s/new.html");
  crawler.DiscoverAll(kHour);
  // Only the newly discovered page is due (the old one keeps its schedule).
  auto due = crawler.FetchAllDue(kHour);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].url, "http://s/new.html");
}

}  // namespace
}  // namespace xymon::webstub
