#include <gtest/gtest.h>

#include "src/alerters/html_alerter.h"
#include "src/webstub/crawler.h"
#include "src/webstub/synthetic_web.h"
#include "src/xml/parser.h"

namespace xymon::webstub {
namespace {

// A plan where every page is fault-prone and every Step starts an episode of
// exactly `kind` lasting `steps` Steps. The workhorse of the fault tests.
FaultPlan SingleFaultPlan(FetchFault kind, uint32_t steps = 1) {
  FaultPlan plan;
  plan.seed = 99;
  plan.fault_fraction = 1.0;
  plan.episode_rate = 1.0;
  plan.episode_min_steps = steps;
  plan.episode_max_steps = steps;
  plan.timeout_weight = kind == FetchFault::kTimeout ? 1.0 : 0.0;
  plan.server_error_weight = kind == FetchFault::kServerError ? 1.0 : 0.0;
  plan.disappear_weight = kind == FetchFault::kDisappeared ? 1.0 : 0.0;
  plan.truncate_weight = kind == FetchFault::kTruncated ? 1.0 : 0.0;
  plan.garbage_weight = kind == FetchFault::kGarbage ? 1.0 : 0.0;
  plan.slow_weight = kind == FetchFault::kSlow ? 1.0 : 0.0;
  return plan;
}

TEST(SyntheticWebTest, PagesAreDeterministic) {
  SyntheticWeb a(42), b(42);
  a.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 10);
  b.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 10);
  EXPECT_EQ(a.Fetch("http://s/c.xml")->body, b.Fetch("http://s/c.xml")->body);
  a.Step();
  b.Step();
  EXPECT_EQ(a.Fetch("http://s/c.xml")->body, b.Fetch("http://s/c.xml")->body);
}

TEST(SyntheticWebTest, UnknownUrlIs404) {
  SyntheticWeb web(1);
  auto response = web.Fetch("http://nope/");
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsNotFound());
}

TEST(SyntheticWebTest, GeneratedXmlPagesParse) {
  SyntheticWeb web(7);
  web.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 8);
  web.AddMembersPage("http://s/m.xml", 4);
  web.AddNewsPage("http://s/n.xml", {"xyleme"});
  for (int step = 0; step < 5; ++step) {
    for (const char* url : {"http://s/c.xml", "http://s/m.xml",
                            "http://s/n.xml"}) {
      auto response = web.Fetch(url);
      ASSERT_TRUE(response.ok());
      auto doc = xml::Parse(response->body);
      EXPECT_TRUE(doc.ok()) << url << ": " << doc.status().ToString();
    }
    web.Step();
  }
}

TEST(SyntheticWebTest, CatalogEvolvesByWindowAndReprice) {
  SyntheticWeb web(3);
  web.AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 5,
                     /*change_rate=*/1.0);
  auto v0 = xml::Parse(web.Fetch("http://s/c.xml")->body);
  web.Step();
  auto v1 = xml::Parse(web.Fetch("http://s/c.xml")->body);
  ASSERT_TRUE(v0.ok() && v1.ok());
  // Same number of products, shifted window: first id changes.
  auto p0 = v0->root->FindChildren("Product");
  auto p1 = v1->root->FindChildren("Product");
  ASSERT_EQ(p0.size(), 5u);
  ASSERT_EQ(p1.size(), 5u);
  EXPECT_NE(*p0.front()->GetAttribute("id"), *p1.front()->GetAttribute("id"));
  // Overlap: v1's first product was v0's second.
  EXPECT_EQ(*p0[1]->GetAttribute("id"), *p1[0]->GetAttribute("id"));
}

TEST(SyntheticWebTest, MembersPageOnlyGrows) {
  SyntheticWeb web(5);
  web.AddMembersPage("http://s/m.xml", 3, /*change_rate=*/1.0);
  size_t last = 0;
  for (int step = 0; step < 4; ++step) {
    auto doc = xml::Parse(web.Fetch("http://s/m.xml")->body);
    ASSERT_TRUE(doc.ok());
    size_t members = doc->root->FindChildren("Member").size();
    EXPECT_GE(members, last);
    last = members;
    web.Step();
  }
  EXPECT_EQ(last, 6u);  // 3 initial + 3 steps at rate 1.0.
}

TEST(SyntheticWebTest, ZeroChangeRateIsStatic) {
  SyntheticWeb web(9);
  web.AddHtmlPage("http://s/p.html", {}, /*change_rate=*/0.0);
  auto before = web.Fetch("http://s/p.html");
  for (int i = 0; i < 10; ++i) web.Step();
  EXPECT_EQ(web.Fetch("http://s/p.html")->body, before->body);
}

TEST(SyntheticWebTest, RemovePage404s) {
  SyntheticWeb web(2);
  web.AddHtmlPage("http://s/x.html");
  ASSERT_TRUE(web.Fetch("http://s/x.html").ok());
  web.RemovePage("http://s/x.html");
  EXPECT_TRUE(web.Fetch("http://s/x.html").status().IsNotFound());
}

// ------------------------------------------------------- Fault injection --

TEST(SyntheticWebFaultTest, PlanDoesNotPerturbContentEvolution) {
  // A slow-only plan degrades latency but must leave the content stream
  // bit-identical to a fault-free twin built from the same seed.
  SyntheticWeb plain(11), faulty(11);
  for (SyntheticWeb* web : {&plain, &faulty}) {
    web->AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 6);
    web->AddNewsPage("http://s/n.xml", {"camera"});
  }
  FaultPlan plan = SingleFaultPlan(FetchFault::kSlow, /*steps=*/2);
  faulty.SetFaultPlan(plan);
  for (int step = 0; step < 8; ++step) {
    plain.Step();
    faulty.Step();
    for (const char* url : {"http://s/c.xml", "http://s/n.xml"}) {
      auto a = plain.Fetch(url);
      auto b = faulty.Fetch(url);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->body, b->body) << url << " at step " << step;
    }
  }
  // And the slow fault actually showed up in the latency channel.
  EXPECT_EQ(faulty.CurrentFault("http://s/c.xml"), FetchFault::kSlow);
  EXPECT_EQ(faulty.Fetch("http://s/c.xml")->latency, plan.slow_latency);
  EXPECT_EQ(plain.Fetch("http://s/c.xml")->latency, kSecond);
}

TEST(SyntheticWebFaultTest, EpisodesAreDeterministic) {
  FaultPlan plan;
  plan.seed = 7;
  plan.fault_fraction = 0.6;
  plan.episode_rate = 0.5;
  SyntheticWeb a(13), b(13);
  for (SyntheticWeb* web : {&a, &b}) {
    for (int i = 0; i < 8; ++i) {
      web->AddHtmlPage("http://s/p" + std::to_string(i) + ".html");
    }
    web->SetFaultPlan(plan);
  }
  EXPECT_EQ(a.fault_prone_count(), b.fault_prone_count());
  for (int step = 0; step < 30; ++step) {
    a.Step();
    b.Step();
    for (const std::string& url : a.Urls()) {
      EXPECT_EQ(a.CurrentFault(url), b.CurrentFault(url))
          << url << " at step " << step;
    }
  }
}

TEST(SyntheticWebFaultTest, NoResponseFaultsMapToStatuses) {
  struct Case {
    FetchFault kind;
    bool (Status::*check)() const;
  };
  const Case cases[] = {
      {FetchFault::kTimeout, &Status::IsIOError},
      {FetchFault::kServerError, &Status::IsUnavailable},
      {FetchFault::kDisappeared, &Status::IsNotFound},
  };
  for (const Case& c : cases) {
    SyntheticWeb web(21);
    web.AddHtmlPage("http://s/p.html");
    web.SetFaultPlan(SingleFaultPlan(c.kind));
    ASSERT_TRUE(web.Fetch("http://s/p.html").ok());  // Healthy before Step.
    web.Step();
    ASSERT_EQ(web.CurrentFault("http://s/p.html"), c.kind);
    auto response = web.Fetch("http://s/p.html");
    ASSERT_FALSE(response.ok()) << FetchFaultName(c.kind);
    EXPECT_TRUE((response.status().*c.check)()) << FetchFaultName(c.kind);
  }
}

TEST(SyntheticWebFaultTest, TruncatedBodyIsAProperPrefix) {
  SyntheticWeb plain(31), faulty(31);
  for (SyntheticWeb* web : {&plain, &faulty}) {
    web->AddCatalogPage("http://s/c.xml", "http://s/c.dtd", 6);
  }
  faulty.SetFaultPlan(SingleFaultPlan(FetchFault::kTruncated));
  plain.Step();
  faulty.Step();
  auto full = plain.Fetch("http://s/c.xml");
  auto cut = faulty.Fetch("http://s/c.xml");
  ASSERT_TRUE(full.ok() && cut.ok());
  EXPECT_EQ(cut->fault, FetchFault::kTruncated);
  EXPECT_LT(cut->body.size(), full->body.size());
  EXPECT_EQ(full->body.compare(0, cut->body.size(), cut->body), 0);
}

TEST(SyntheticWebFaultTest, GarbageBodyNeverParses) {
  SyntheticWeb web(41);
  web.AddNewsPage("http://s/n.xml");
  web.SetFaultPlan(SingleFaultPlan(FetchFault::kGarbage, /*steps=*/3));
  for (int step = 0; step < 3; ++step) {
    web.Step();
    auto response = web.Fetch("http://s/n.xml");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->fault, FetchFault::kGarbage);
    EXPECT_FALSE(xml::Parse(response->body).ok());
  }
}

TEST(SyntheticWebFaultTest, PermanentDisappearanceRemovesFromUrls) {
  SyntheticWeb web(51);
  web.AddHtmlPage("http://s/p.html");
  FaultPlan plan = SingleFaultPlan(FetchFault::kDisappeared);
  plan.permanent_disappear_rate = 1.0;
  web.SetFaultPlan(plan);
  EXPECT_EQ(web.Urls().size(), 1u);
  web.Step();
  EXPECT_TRUE(web.IsPermanentlyGone("http://s/p.html"));
  EXPECT_TRUE(web.Urls().empty());
  for (int step = 0; step < 5; ++step) {
    EXPECT_TRUE(web.Fetch("http://s/p.html").status().IsNotFound());
    web.Step();
  }
  EXPECT_TRUE(web.IsPermanentlyGone("http://s/p.html"));
}

// ---------------------------------------------------------------- Crawler --

TEST(CrawlerTest, DiscoverAndFetchAllOnce) {
  SyntheticWeb web(4);
  for (int i = 0; i < 5; ++i) {
    web.AddHtmlPage("http://s/p" + std::to_string(i) + ".html");
  }
  Crawler crawler(&web, kDay);
  crawler.DiscoverAll(0);
  EXPECT_EQ(crawler.known_urls(), 5u);
  auto docs = crawler.FetchAllDue(0);
  EXPECT_EQ(docs.size(), 5u);
  // Nothing due again until the period elapses.
  EXPECT_TRUE(crawler.FetchAllDue(kDay - 1).empty());
  EXPECT_EQ(crawler.FetchAllDue(kDay).size(), 5u);
  EXPECT_EQ(crawler.fetch_count(), 10u);
}

TEST(CrawlerTest, RefreshHintsShortenThePeriod) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/hot.html");
  web.AddHtmlPage("http://s/cold.html");
  Crawler crawler(&web, kDay);
  crawler.SetRefreshHint("http://s/hot.html", kHour);
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  // One hour later only the hot page is due.
  auto due = crawler.FetchAllDue(kHour);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].url, "http://s/hot.html");
}

TEST(CrawlerTest, HintsNeverLengthenThePeriod) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/p.html");
  Crawler crawler(&web, kHour);
  crawler.SetRefreshHint("http://s/p.html", kWeek);  // Slower than default.
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  EXPECT_EQ(crawler.FetchAllDue(kHour).size(), 1u);
}

TEST(CrawlerTest, MostOverdueFirst) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/a.html");
  web.AddHtmlPage("http://s/b.html");
  Crawler crawler(&web, kDay);
  crawler.SetRefreshHint("http://s/b.html", kHour);
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  // At t=kDay, b has been due since kHour (most overdue), a since kDay.
  auto doc = crawler.FetchNext(kDay);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->url, "http://s/b.html");
}

TEST(CrawlerTest, LinkDiscoveryFollowsHubPages) {
  SyntheticWeb web(6);
  web.AddHubPage("http://portal.example.org/",
                 {"http://siteA.example.org/c.xml",
                  "http://siteB.example.org/news.xml",
                  "mailto:not-a-page", "/relative/skipped"});
  web.AddCatalogPage("http://siteA.example.org/c.xml",
                     "http://siteA.example.org/c.dtd", 3);
  web.AddNewsPage("http://siteB.example.org/news.xml");

  Crawler crawler(&web, kDay);
  // Seed only with the portal — the rest is discovered by following links.
  crawler.DiscoverFromPage(
      FetchedDoc{"seed", "<a href=\"http://portal.example.org/\">p</a>", 0},
      0);
  EXPECT_EQ(crawler.known_urls(), 1u);

  size_t discovered = 0;
  std::vector<std::string> fetched;
  while (auto doc = crawler.FetchNext(0)) {
    fetched.push_back(doc->url);
    discovered += crawler.DiscoverFromPage(*doc, 0);
  }
  EXPECT_EQ(discovered, 2u);  // Two absolute http links; junk ignored.
  ASSERT_EQ(fetched.size(), 3u);
  EXPECT_EQ(fetched[0], "http://portal.example.org/");
}

TEST(HtmlLinkTest, ExtractLinksFindsAbsoluteAnchors) {
  auto links = xymon::alerters::HtmlAlerter::ExtractLinks(
      "<a href=\"http://a.org/x\">x</a> "
      "<A HREF='https://b.org/'>y</A> "
      "<a href=\"/relative\">no</a> <a href=unquoted>no</a>");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], "http://a.org/x");
  EXPECT_EQ(links[1], "https://b.org/");
}

TEST(CrawlerTest, VanishedPagesAreForgotten) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/gone.html");
  Crawler crawler(&web, kDay);
  crawler.DiscoverAll(0);
  web.RemovePage("http://s/gone.html");
  // A 404 on first contact: the URL never existed for us — forget it.
  EXPECT_EQ(crawler.FetchNext(0), std::nullopt);
  EXPECT_EQ(crawler.known_urls(), 0u);
  EXPECT_EQ(crawler.stats().urls_forgotten, 1u);
  EXPECT_TRUE(crawler.TakeEvents().empty());  // No disappearance episode.
}

TEST(CrawlerTest, LateDiscoveryAddsNewUrlsOnly) {
  SyntheticWeb web(4);
  web.AddHtmlPage("http://s/old.html");
  Crawler crawler(&web, kDay);
  crawler.DiscoverAll(0);
  (void)crawler.FetchAllDue(0);
  web.AddHtmlPage("http://s/new.html");
  crawler.DiscoverAll(kHour);
  // Only the newly discovered page is due (the old one keeps its schedule).
  auto due = crawler.FetchAllDue(kHour);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].url, "http://s/new.html");
}

// ----------------------------------------------------- Crawler resilience --

TEST(CrawlerResilienceTest, TransientFailureBacksOffQuarantinesAndRecovers) {
  const std::string url = "http://s/flaky.html";
  SyntheticWeb web(61);
  web.AddHtmlPage(url);
  web.SetFaultPlan(SingleFaultPlan(FetchFault::kTimeout, /*steps=*/1));

  CrawlerOptions options;
  options.default_period = kDay;
  options.retry_base_delay = 5 * kMinute;
  options.retry_max_delay = 2 * kHour;
  options.quarantine_threshold = 2;
  options.quarantine_probe_period = kDay;
  Crawler crawler(&web, options);
  crawler.DiscoverAll(0);
  ASSERT_EQ(crawler.FetchAllDue(0).size(), 1u);  // Healthy first contact.

  web.Step();  // Timeout episode begins (lasts until the next Step).

  // Failure #1 at the scheduled refresh: a backoff retry, not a quarantine.
  EXPECT_TRUE(crawler.FetchAllDue(kDay).empty());
  EXPECT_EQ(crawler.stats().timeouts, 1u);
  EXPECT_EQ(crawler.stats().retries_scheduled, 1u);
  ASSERT_TRUE(crawler.NextDue(url).has_value());
  Timestamp retry_at = *crawler.NextDue(url);
  EXPECT_GT(retry_at, kDay);
  // delay = base + jitter, jitter <= base/2.
  EXPECT_LE(retry_at, kDay + options.retry_base_delay +
                          options.retry_base_delay / 2);

  // Failure #2 crosses the threshold: the circuit opens.
  EXPECT_TRUE(crawler.FetchAllDue(retry_at).empty());
  EXPECT_TRUE(crawler.IsQuarantined(url));
  EXPECT_EQ(crawler.quarantined_count(), 1u);
  EXPECT_EQ(crawler.stats().quarantines_opened, 1u);
  Timestamp probe_at = *crawler.NextDue(url);
  EXPECT_EQ(probe_at, retry_at + options.quarantine_probe_period);

  web.Step();  // Episode expires; the page is healthy again.

  // The slow probe succeeds and closes the circuit.
  auto docs = crawler.FetchAllDue(probe_at);
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].url, url);
  EXPECT_FALSE(crawler.IsQuarantined(url));
  EXPECT_EQ(crawler.quarantined_count(), 0u);
  EXPECT_EQ(crawler.stats().quarantines_closed, 1u);
  // Back on the normal schedule.
  EXPECT_EQ(*crawler.NextDue(url), probe_at + options.default_period);
}

TEST(CrawlerResilienceTest, BackoffDelayDoublesUpToCap) {
  const std::string url = "http://s/down.html";
  SyntheticWeb web(71);
  web.AddHtmlPage(url);
  // One long episode so every retry keeps failing.
  web.SetFaultPlan(SingleFaultPlan(FetchFault::kServerError, /*steps=*/50));

  CrawlerOptions options;
  options.retry_base_delay = 5 * kMinute;
  options.retry_max_delay = 2 * kHour;
  options.quarantine_threshold = 100;  // Keep the circuit closed.
  Crawler crawler(&web, options);
  crawler.DiscoverAll(0);
  ASSERT_EQ(crawler.FetchAllDue(0).size(), 1u);
  web.Step();

  Timestamp now = kDay;
  Timestamp expected = options.retry_base_delay;
  for (uint32_t failure = 1; failure <= 8; ++failure) {
    EXPECT_TRUE(crawler.FetchAllDue(now).empty());
    Timestamp next = *crawler.NextDue(url);
    Timestamp delay = next - now;
    EXPECT_GE(delay, expected) << "failure " << failure;
    EXPECT_LE(delay, expected + expected / 2) << "failure " << failure;
    now = next;
    expected = std::min(expected * 2, options.retry_max_delay);
  }
  EXPECT_EQ(crawler.stats().server_errors, 8u);
  EXPECT_EQ(crawler.stats().retries_scheduled, 8u);
}

TEST(CrawlerResilienceTest, DisappearReappearEmitsOneEventPerTransition) {
  const std::string url = "http://s/blinky.html";
  SyntheticWeb web(81);
  web.AddHtmlPage(url);
  web.SetFaultPlan(SingleFaultPlan(FetchFault::kDisappeared, /*steps=*/1));

  CrawlerOptions options;
  options.quarantine_probe_period = kDay;
  Crawler crawler(&web, options);
  crawler.DiscoverAll(0);
  ASSERT_EQ(crawler.FetchAllDue(0).size(), 1u);
  web.Step();  // The page disappears.

  EXPECT_TRUE(crawler.FetchAllDue(kDay).empty());
  EXPECT_TRUE(crawler.IsMissing(url));
  EXPECT_EQ(crawler.missing_count(), 1u);
  EXPECT_EQ(crawler.known_urls(), 1u);  // Kept: it was fetched before.

  web.Step();  // The page comes back.
  ASSERT_EQ(crawler.FetchAllDue(2 * kDay).size(), 1u);
  EXPECT_FALSE(crawler.IsMissing(url));

  auto events = crawler.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, DocStatusEvent::Kind::kDisappeared);
  EXPECT_EQ(events[0].url, url);
  EXPECT_EQ(events[0].time, kDay);
  EXPECT_EQ(events[1].kind, DocStatusEvent::Kind::kReappeared);
  EXPECT_EQ(events[1].time, 2 * kDay);
  EXPECT_TRUE(crawler.TakeEvents().empty());  // Drained.
  EXPECT_EQ(crawler.stats().disappeared_events, 1u);
  EXPECT_EQ(crawler.stats().reappeared_events, 1u);
}

TEST(CrawlerResilienceTest, PermanentlyGonePageIsForgottenAfterProbes) {
  const std::string url = "http://s/dead.html";
  SyntheticWeb web(91);
  web.AddHtmlPage(url);
  FaultPlan plan = SingleFaultPlan(FetchFault::kDisappeared);
  plan.permanent_disappear_rate = 1.0;
  web.SetFaultPlan(plan);

  CrawlerOptions options;
  options.quarantine_probe_period = kDay;
  options.forget_after_missing_probes = 3;
  Crawler crawler(&web, options);
  crawler.DiscoverAll(0);
  ASSERT_EQ(crawler.FetchAllDue(0).size(), 1u);
  web.Step();  // Gone for good.

  for (int probe = 1; probe <= 3; ++probe) {
    EXPECT_TRUE(crawler.FetchAllDue(probe * kDay).empty());
  }
  EXPECT_EQ(crawler.known_urls(), 0u);
  EXPECT_EQ(crawler.missing_count(), 0u);
  EXPECT_EQ(crawler.stats().urls_forgotten, 1u);
  auto events = crawler.TakeEvents();
  ASSERT_EQ(events.size(), 1u);  // One disappearance, never a reappearance.
  EXPECT_EQ(events[0].kind, DocStatusEvent::Kind::kDisappeared);
}

TEST(CrawlerResilienceTest, FirstContactTimeoutIsRetriedNotForgotten) {
  const std::string url = "http://s/warming-up.html";
  SyntheticWeb web(101);
  web.AddHtmlPage(url);
  web.SetFaultPlan(SingleFaultPlan(FetchFault::kTimeout, /*steps=*/1));
  web.Step();  // Faulty before the crawler ever reaches it.

  Crawler crawler(&web, CrawlerOptions{});
  crawler.DiscoverAll(0);
  EXPECT_TRUE(crawler.FetchAllDue(0).empty());
  // Unlike a first-contact 404, a timeout keeps the URL (it exists, the
  // server is just struggling) and schedules a retry.
  EXPECT_EQ(crawler.known_urls(), 1u);
  EXPECT_EQ(crawler.stats().retries_scheduled, 1u);
}

TEST(CrawlerResilienceTest, FetchAllDueAttemptsEachUrlOncePerRound) {
  // Regression: with a zero backoff a failing URL is rescheduled for `now`;
  // the round must not re-fetch it (or spin forever) — one attempt per URL
  // per round.
  SyntheticWeb web(111);
  web.AddHtmlPage("http://s/bad.html");
  web.SetFaultPlan(SingleFaultPlan(FetchFault::kTimeout, /*steps=*/50));
  web.Step();  // bad.html enters its long timeout episode.
  for (int i = 0; i < 3; ++i) {
    // Added after the Step: healthy until the next Step (which never comes).
    web.AddHtmlPage("http://ok.example.org/p" + std::to_string(i) + ".html");
  }

  CrawlerOptions options;
  options.retry_base_delay = 0;  // Zero backoff: reschedule for `now`.
  options.retry_max_delay = 0;
  options.quarantine_threshold = 100;
  Crawler crawler(&web, options);
  crawler.DiscoverAll(0);
  auto docs = crawler.FetchAllDue(0);
  EXPECT_EQ(docs.size(), 3u);  // The healthy trio.
  // Exactly one attempt for the failing page in this round.
  EXPECT_EQ(crawler.stats().fetch_attempts, 4u);
  EXPECT_EQ(*crawler.NextDue("http://s/bad.html"), 0);
  // The next round tries it exactly once more.
  EXPECT_TRUE(crawler.FetchAllDue(0).empty());
  EXPECT_EQ(crawler.stats().fetch_attempts, 5u);
}

}  // namespace
}  // namespace xymon::webstub
