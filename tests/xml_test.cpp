#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/xml/codec.h"
#include "src/xml/dom.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace xymon::xml {
namespace {

Document MustParse(std::string_view text) {
  auto doc = Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString() << " for: " << text;
  return std::move(doc).value();
}

// ---------------------------------------------------------------- Parser --

TEST(XmlParserTest, MinimalElement) {
  Document doc = MustParse("<a/>");
  ASSERT_NE(doc.root, nullptr);
  EXPECT_EQ(doc.root->name(), "a");
  EXPECT_TRUE(doc.root->children().empty());
}

TEST(XmlParserTest, NestedElementsAndText) {
  Document doc = MustParse("<a><b>hello</b><c/></a>");
  ASSERT_EQ(doc.root->child_count(), 2u);
  EXPECT_EQ(doc.root->child(0)->name(), "b");
  EXPECT_EQ(doc.root->child(0)->TextContent(), "hello");
  EXPECT_EQ(doc.root->child(1)->name(), "c");
}

TEST(XmlParserTest, Attributes) {
  Document doc = MustParse(R"(<a x="1" y='two' z="a&amp;b"/>)");
  EXPECT_EQ(*doc.root->GetAttribute("x"), "1");
  EXPECT_EQ(*doc.root->GetAttribute("y"), "two");
  EXPECT_EQ(*doc.root->GetAttribute("z"), "a&b");
  EXPECT_EQ(doc.root->GetAttribute("w"), nullptr);
}

TEST(XmlParserTest, DuplicateAttributeRejected) {
  EXPECT_TRUE(Parse(R"(<a x="1" x="2"/>)").status().IsParseError());
}

TEST(XmlParserTest, PredefinedEntities) {
  Document doc = MustParse("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  EXPECT_EQ(doc.root->TextContent(), "<>&'\"");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  Document doc = MustParse("<a>&#65;&#x42;&#233;</a>");
  EXPECT_EQ(doc.root->TextContent(), "AB\xC3\xA9");  // "ABé" in UTF-8
}

TEST(XmlParserTest, BadCharacterReference) {
  EXPECT_TRUE(Parse("<a>&#xZZ;</a>").status().IsParseError());
  EXPECT_TRUE(Parse("<a>&#;</a>").status().IsParseError());
  EXPECT_TRUE(Parse("<a>&#1114112;</a>").status().IsParseError());
}

TEST(XmlParserTest, UnknownEntityRejected) {
  EXPECT_TRUE(Parse("<a>&unknown;</a>").status().IsParseError());
}

TEST(XmlParserTest, CdataSection) {
  Document doc = MustParse("<a><![CDATA[<not> & parsed]]></a>");
  EXPECT_EQ(doc.root->TextContent(), "<not> & parsed");
}

TEST(XmlParserTest, CommentsIgnored) {
  Document doc = MustParse("<!-- head --><a>x<!-- mid -->y</a>");
  EXPECT_EQ(doc.root->TextContent(), "xy");
}

TEST(XmlParserTest, XmlDeclAndPi) {
  Document doc = MustParse("<?xml version=\"1.0\"?><?other pi?><a/>");
  EXPECT_EQ(doc.root->name(), "a");
}

TEST(XmlParserTest, DoctypeWithSystemId) {
  Document doc = MustParse(
      "<!DOCTYPE catalog SYSTEM \"http://ex.com/cat.dtd\"><catalog/>");
  EXPECT_EQ(doc.doctype_name, "catalog");
  EXPECT_EQ(doc.dtd_url, "http://ex.com/cat.dtd");
}

TEST(XmlParserTest, DoctypeWithPublicId) {
  Document doc = MustParse(
      "<!DOCTYPE html PUBLIC \"-//W3C//DTD\" \"http://w3.org/html.dtd\">"
      "<html/>");
  EXPECT_EQ(doc.doctype_name, "html");
  EXPECT_EQ(doc.dtd_url, "http://w3.org/html.dtd");
}

TEST(XmlParserTest, DoctypeInternalSubsetSkipped) {
  Document doc =
      MustParse("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>t</a>");
  EXPECT_EQ(doc.doctype_name, "a");
  EXPECT_EQ(doc.root->TextContent(), "t");
}

TEST(XmlParserTest, MismatchedTagsRejected) {
  auto st = Parse("<a><b></a></b>").status();
  EXPECT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("mismatched"), std::string::npos);
}

TEST(XmlParserTest, TruncatedInputRejected) {
  EXPECT_TRUE(Parse("<a><b>").status().IsParseError());
  EXPECT_TRUE(Parse("<a attr=\"x").status().IsParseError());
  EXPECT_TRUE(Parse("").status().IsParseError());
}

TEST(XmlParserTest, TrailingContentRejected) {
  EXPECT_TRUE(Parse("<a/><b/>").status().IsParseError());
  EXPECT_TRUE(Parse("<a/>junk").status().IsParseError());
}

TEST(XmlParserTest, ErrorPositionsAreReported) {
  auto st = Parse("<a>\n<b x=></b></a>").status();
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("2:"), std::string::npos) << st.ToString();
}

TEST(XmlParserTest, DeepNesting) {
  std::string text;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  Document doc = MustParse(text);
  EXPECT_EQ(doc.root->TextContent(), "x");
}

// ------------------------------------------------------------------- DOM --

TEST(DomTest, AddAndFindChildren) {
  auto root = Node::Element("root");
  root->AddElement("a", "1");
  root->AddElement("b", "2");
  root->AddElement("a", "3");
  EXPECT_EQ(root->FindChild("b")->TextContent(), "2");
  EXPECT_EQ(root->FindChildren("a").size(), 2u);
  EXPECT_EQ(root->FindChild("zzz"), nullptr);
}

TEST(DomTest, FindDescendantsIncludesSelf) {
  Document doc = MustParse("<a><a><b><a/></b></a></a>");
  EXPECT_EQ(doc.root->FindDescendants("a").size(), 3u);
}

TEST(DomTest, InsertAndRemoveChild) {
  auto root = Node::Element("r");
  root->AddElement("a");
  root->AddElement("c");
  root->InsertChild(1, Node::Element("b"));
  ASSERT_EQ(root->child_count(), 3u);
  EXPECT_EQ(root->child(1)->name(), "b");
  auto removed = root->RemoveChild(0);
  EXPECT_EQ(removed->name(), "a");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(root->child(0)->name(), "b");
}

TEST(DomTest, ParentLinksMaintained) {
  auto root = Node::Element("r");
  Node* child = root->AddElement("c");
  EXPECT_EQ(child->parent(), root.get());
  EXPECT_EQ(root->IndexOfChild(child), 0u);
  EXPECT_EQ(child->Depth(), 1);
}

TEST(DomTest, PostorderVisitsChildrenFirst) {
  Document doc = MustParse("<a><b><c/></b><d/></a>");
  std::vector<std::string> order;
  doc.root->VisitPostorder([&](const Node& n) {
    if (n.is_element()) order.push_back(n.name());
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<std::string>{"c", "b", "d", "a"}));
}

TEST(DomTest, CloneIsDeepAndEqual) {
  Document doc = MustParse(R"(<a x="1"><b>t</b></a>)");
  doc.root->set_xid(77);
  auto clone = doc.root->Clone();
  EXPECT_TRUE(doc.root->EqualsIgnoringXids(*clone));
  EXPECT_EQ(clone->xid(), 77u);
  // Mutating the clone must not touch the original (deep copy).
  clone->FindChild("b")->child(0)->set_text("changed");
  EXPECT_FALSE(doc.root->EqualsIgnoringXids(*clone));
  EXPECT_EQ(doc.root->FindChild("b")->TextContent(), "t");
}

TEST(DomTest, EqualsDetectsDifferences) {
  Document a = MustParse("<a><b>x</b></a>");
  Document b = MustParse("<a><b>y</b></a>");
  Document c = MustParse("<a><b>x</b><c/></a>");
  EXPECT_FALSE(a.root->EqualsIgnoringXids(*b.root));
  EXPECT_FALSE(a.root->EqualsIgnoringXids(*c.root));
  EXPECT_TRUE(a.root->EqualsIgnoringXids(*MustParse("<a><b>x</b></a>").root));
}

TEST(DomTest, SubtreeHashSensitiveToContent) {
  Document a = MustParse("<a><b>x</b></a>");
  Document b = MustParse("<a><b>y</b></a>");
  Document c = MustParse(R"(<a q="1"><b>x</b></a>)");
  EXPECT_NE(a.root->SubtreeHash(), b.root->SubtreeHash());
  EXPECT_NE(a.root->SubtreeHash(), c.root->SubtreeHash());
  EXPECT_EQ(a.root->SubtreeHash(), MustParse("<a><b>x</b></a>").root->SubtreeHash());
}

TEST(DomTest, TextContentConcatenatesDescendants) {
  Document doc = MustParse("<a>one<b> two</b> three</a>");
  EXPECT_EQ(doc.root->TextContent(), "one two three");
}

// ------------------------------------------------------------ Serializer --

TEST(SerializerTest, EscapesSpecialCharacters) {
  auto node = Node::Element("a");
  node->AddChild(Node::Text("x<y & z>"));
  node->SetAttribute("q", "a\"b<c");
  std::string out = Serialize(*node);
  EXPECT_EQ(out, "<a q=\"a&quot;b&lt;c\">x&lt;y &amp; z&gt;</a>");
}

TEST(SerializerTest, SelfClosesEmptyElements) {
  EXPECT_EQ(Serialize(*Node::Element("empty")), "<empty/>");
}

TEST(SerializerTest, PrologIncludesDoctype) {
  Document doc = MustParse(
      "<!DOCTYPE c SYSTEM \"http://e/c.dtd\"><c/>");
  std::string out = Serialize(doc, {.indent = false, .prolog = true});
  EXPECT_NE(out.find("<?xml"), std::string::npos);
  EXPECT_NE(out.find("<!DOCTYPE c SYSTEM \"http://e/c.dtd\">"),
            std::string::npos);
}

TEST(SerializerTest, IndentedOutputParsesBack) {
  Document doc = MustParse("<a><b><c>x</c></b><d/></a>");
  std::string pretty = Serialize(*doc.root, {.indent = true});
  Document again = MustParse(pretty);
  EXPECT_TRUE(doc.root->EqualsIgnoringXids(*again.root));
}

std::unique_ptr<Node> RandomTree(Rng* rng, int depth);

// ----------------------------------------------------------------- Codec --

TEST(CodecTest, VarintRoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{300}, uint64_t{1} << 20, uint64_t{1} << 40,
                     UINT64_MAX}) {
    std::string buf;
    PutVarint(v, &buf);
    std::string_view view(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(&view, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(view.empty());
  }
}

TEST(CodecTest, StringRoundTripIncludingBinary) {
  std::string binary("\x00\xff<>&\n", 6);
  std::string buf;
  PutString(binary, &buf);
  std::string_view view(buf);
  std::string decoded;
  ASSERT_TRUE(GetString(&view, &decoded));
  EXPECT_EQ(decoded, binary);
}

TEST(CodecTest, DocumentRoundTripPreservesXids) {
  Document doc = MustParse(
      "<!DOCTYPE c SYSTEM \"http://e/c.dtd\">"
      "<c a=\"1\"><p>text &amp; more</p><q/></c>");
  doc.root->set_xid(42);
  doc.root->child(0)->set_xid(43);

  std::string encoded = EncodeDocument(doc);
  auto decoded = DecodeDocument(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->doctype_name, "c");
  EXPECT_EQ(decoded->dtd_url, "http://e/c.dtd");
  EXPECT_TRUE(decoded->root->EqualsIgnoringXids(*doc.root));
  EXPECT_EQ(decoded->root->xid(), 42u);
  EXPECT_EQ(decoded->root->child(0)->xid(), 43u);
}

TEST(CodecTest, CorruptInputRejected) {
  Document doc = MustParse("<a><b>t</b></a>");
  std::string encoded = EncodeDocument(doc);
  EXPECT_TRUE(DecodeDocument("").status().IsCorruption());
  EXPECT_TRUE(DecodeDocument("WRONGMAGIC").status().IsCorruption());
  // Truncations at every length must fail cleanly, never crash.
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto result = DecodeDocument(encoded.substr(0, len));
    EXPECT_FALSE(result.ok()) << "accepted truncation at " << len;
  }
  // Byte flips must not crash (may decode to a different valid doc).
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = encoded;
    mutated[rng.Uniform(mutated.size())] = static_cast<char>(rng.Next());
    (void)DecodeDocument(mutated);
  }
}

class CodecRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundTripTest, RandomDocumentsRoundTrip) {
  Rng rng(GetParam() * 31 + 5);
  auto tree = RandomTree(&rng, 4);
  Document doc;
  doc.root = tree->Clone();
  std::string encoded = EncodeDocument(doc);
  auto decoded = DecodeDocument(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->root->EqualsIgnoringXids(*doc.root));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest,
                         ::testing::Range<uint64_t>(0, 15));

// Round-trip property: parse(serialize(t)) == t over random documents.
class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<Node> RandomTree(Rng* rng, int depth) {
  auto node = Node::Element("el" + std::to_string(rng->Uniform(5)));
  if (rng->Bernoulli(0.5)) {
    node->SetAttribute("a" + std::to_string(rng->Uniform(3)),
                       "v<&\"'" + std::to_string(rng->Uniform(100)));
  }
  size_t children = rng->Uniform(depth > 0 ? 4 : 1);
  bool last_was_text = false;
  for (size_t i = 0; i < children; ++i) {
    // Adjacent text nodes merge on reparse, so never generate two in a row.
    if (!last_was_text && rng->Bernoulli(0.4)) {
      node->AddChild(Node::Text("text&<>" + std::to_string(rng->Uniform(50))));
      last_was_text = true;
    } else {
      node->AddChild(RandomTree(rng, depth - 1));
      last_was_text = false;
    }
  }
  return node;
}

TEST_P(XmlRoundTripTest, ParseSerializeFixpoint) {
  Rng rng(GetParam());
  auto tree = RandomTree(&rng, 4);
  std::string text = Serialize(*tree);
  auto parsed = ParseFragment(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(tree->EqualsIgnoringXids(**parsed)) << text;
  // Second round trip is the identity.
  EXPECT_EQ(Serialize(**parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace xymon::xml
