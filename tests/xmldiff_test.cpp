#include <gtest/gtest.h>

#include <functional>

#include "src/common/rng.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"
#include "src/warehouse/warehouse.h"
#include "src/xmldiff/diff.h"

namespace xymon::xmldiff {
namespace {

using xml::Node;

std::unique_ptr<Node> MustParse(std::string_view text) {
  auto doc = xml::ParseFragment(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

struct Versions {
  std::unique_ptr<Node> old_root;
  std::unique_ptr<Node> new_root;
  XidAllocator alloc;
  DiffResult result;
};

Versions DiffTexts(std::string_view old_text, std::string_view new_text) {
  Versions v;
  v.old_root = MustParse(old_text);
  v.alloc.AssignAll(v.old_root.get());
  v.new_root = MustParse(new_text);
  v.result = Diff(*v.old_root, v.new_root.get(), &v.alloc);
  return v;
}

size_t CountChanges(const DiffResult& result, ChangeOp op,
                    std::string_view tag) {
  size_t n = 0;
  for (const ElementChange& c : result.changes) {
    if (c.op == op && c.element->name() == tag) ++n;
  }
  return n;
}

// ------------------------------------------------------------------ XIDs --

TEST(XidTest, AssignAllGivesUniqueIds) {
  auto root = MustParse("<a><b/><c><d/></c></a>");
  XidAllocator alloc;
  alloc.AssignAll(root.get());
  XidIndex index(root.get());
  EXPECT_EQ(index.size(), 4u);
  EXPECT_NE(root->xid(), 0u);
}

TEST(XidTest, AssignAllPreservesExistingIds) {
  auto root = MustParse("<a><b/></a>");
  root->set_xid(99);
  XidAllocator alloc(100);
  alloc.AssignAll(root.get());
  EXPECT_EQ(root->xid(), 99u);
  EXPECT_EQ(root->child(0)->xid(), 100u);
}

TEST(XidTest, IndexFindsNodes) {
  auto root = MustParse("<a><b/></a>");
  XidAllocator alloc;
  alloc.AssignAll(root.get());
  XidIndex index(root.get());
  EXPECT_EQ(index.Find(root->xid()), root.get());
  EXPECT_EQ(index.Find(12345), nullptr);
}

// ------------------------------------------------------------------ Diff --

TEST(DiffTest, IdenticalDocumentsEmptyDelta) {
  auto v = DiffTexts("<a><b>x</b></a>", "<a><b>x</b></a>");
  EXPECT_TRUE(v.result.delta.empty());
  EXPECT_TRUE(v.result.changes.empty());
}

TEST(DiffTest, XidsPropagateToUnchangedContent) {
  auto v = DiffTexts("<a><b>x</b><c/></a>", "<a><b>x</b><c/></a>");
  EXPECT_EQ(v.new_root->xid(), v.old_root->xid());
  EXPECT_EQ(v.new_root->child(0)->xid(), v.old_root->child(0)->xid());
  EXPECT_EQ(v.new_root->child(1)->xid(), v.old_root->child(1)->xid());
}

TEST(DiffTest, InsertedElementDetected) {
  auto v = DiffTexts("<cat><p>1</p></cat>", "<cat><p>1</p><p>2</p></cat>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "p"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kDeleted, "p"), 0u);
  ASSERT_EQ(v.result.delta.ops.size(), 1u);
  EXPECT_EQ(v.result.delta.ops[0].type, DeltaOpType::kInsert);
  EXPECT_EQ(v.result.delta.ops[0].position, 1u);
  EXPECT_EQ(v.result.delta.ops[0].parent_xid, v.old_root->xid());
}

TEST(DiffTest, InsertedSubtreeMarksAllElementsNew) {
  auto v = DiffTexts("<a/>", "<a><entry><Product><name>n</name></Product></entry></a>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "entry"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "Product"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "name"), 1u);
}

TEST(DiffTest, DeletedElementDetected) {
  auto v = DiffTexts("<cat><p>1</p><p>2</p></cat>", "<cat><p>2</p></cat>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kDeleted, "p"), 1u);
  // The surviving <p> keeps its XID.
  EXPECT_EQ(v.new_root->child(0)->xid(), v.old_root->child(1)->xid());
}

TEST(DiffTest, TextUpdateDetected) {
  auto v = DiffTexts("<a><price>10</price></a>", "<a><price>20</price></a>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kUpdated, "price"), 1u);
  bool saw_text_update = false;
  for (const DeltaOp& op : v.result.delta.ops) {
    if (op.type == DeltaOpType::kUpdateText) {
      saw_text_update = true;
      EXPECT_EQ(op.new_text, "20");
    }
  }
  EXPECT_TRUE(saw_text_update);
  // Element identity survives the update.
  EXPECT_EQ(v.new_root->child(0)->xid(), v.old_root->child(0)->xid());
}

TEST(DiffTest, AttributeUpdateDetected) {
  auto v = DiffTexts(R"(<a><p id="1"/></a>)", R"(<a><p id="2"/></a>)");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kUpdated, "p"), 1u);
  ASSERT_EQ(v.result.delta.ops.size(), 1u);
  EXPECT_EQ(v.result.delta.ops[0].type, DeltaOpType::kUpdateAttrs);
}

TEST(DiffTest, ParentOfChangedChildIsUpdated) {
  auto v = DiffTexts("<cat><p>1</p></cat>", "<cat><p>1</p><p>2</p></cat>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kUpdated, "cat"), 1u);
}

TEST(DiffTest, RootReplacedEntirely) {
  auto v = DiffTexts("<old><x/></old>", "<brand><y/></brand>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kDeleted, "old"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "brand"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "y"), 1u);
}

TEST(DiffTest, SlidingWindowProducesInsertAndDelete) {
  // Catalog-style change: first entry leaves, new entry arrives.
  auto v = DiffTexts(
      "<c><p id=\"1\">a</p><p id=\"2\">b</p><p id=\"3\">c</p></c>",
      "<c><p id=\"2\">b</p><p id=\"3\">c</p><p id=\"4\">d</p></c>");
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "p"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kDeleted, "p"), 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kUpdated, "p"), 0u);
}

TEST(DiffTest, DeltaToXmlHasPaperShape) {
  auto v = DiffTexts("<a><b>x</b></a>", "<a><b>y</b><c/></a>");
  auto delta_xml = v.result.delta.ToXml();
  EXPECT_EQ(delta_xml->name(), "delta");
  EXPECT_NE(delta_xml->FindChild("updated"), nullptr);
  EXPECT_NE(delta_xml->FindChild("inserted"), nullptr);
  const Node* ins = delta_xml->FindChild("inserted");
  EXPECT_NE(ins->GetAttribute("parent"), nullptr);
  EXPECT_NE(ins->GetAttribute("position"), nullptr);
}

// ----------------------------------------------------------------- Apply --

TEST(ApplyTest, ReconstructsNewVersion) {
  auto v = DiffTexts("<a><b>x</b><c/><d>z</d></a>",
                     "<a><b>y</b><d>z</d><e>new</e></a>");
  auto applied = Apply(*v.old_root, v.result.delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE((*applied)->EqualsIgnoringXids(*v.new_root))
      << xml::Serialize(**applied);
}

TEST(ApplyTest, RootReplacement) {
  auto v = DiffTexts("<old/>", "<brand><y/></brand>");
  auto applied = Apply(*v.old_root, v.result.delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE((*applied)->EqualsIgnoringXids(*v.new_root));
}

TEST(ApplyTest, UnknownXidIsCorruption) {
  auto old_root = MustParse("<a/>");
  XidAllocator alloc;
  alloc.AssignAll(old_root.get());
  Delta delta;
  DeltaOp op;
  op.type = DeltaOpType::kDelete;
  op.xid = 424242;
  delta.ops.push_back(std::move(op));
  EXPECT_TRUE(Apply(*old_root, delta).status().IsCorruption());
}

TEST(DiffTest, SiblingReorderIsAMoveNotInsertDelete) {
  auto v = DiffTexts(
      "<c><p id=\"1\"><t>alpha</t></p><p id=\"2\"><t>beta</t></p>"
      "<p id=\"3\"><t>gamma</t></p></c>",
      "<c><p id=\"3\"><t>gamma</t></p><p id=\"1\"><t>alpha</t></p>"
      "<p id=\"2\"><t>beta</t></p></c>");
  // The reordered element is neither new nor deleted (XyDiff move, [17]).
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kNew, "p"), 0u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kDeleted, "p"), 0u);
  // Exactly one move op; the parent counts as updated.
  size_t moves = 0;
  for (const DeltaOp& op : v.result.delta.ops) {
    if (op.type == DeltaOpType::kMove) ++moves;
  }
  EXPECT_EQ(moves, 1u);
  EXPECT_EQ(CountChanges(v.result, ChangeOp::kUpdated, "c"), 1u);
  // Identity survives the move.
  EXPECT_EQ(v.new_root->child(0)->xid(), v.old_root->child(2)->xid());
}

TEST(ApplyTest, MoveReconstructs) {
  auto v = DiffTexts(
      "<c><a>1</a><b>2</b><d>3</d></c>",
      "<c><d>3</d><b>2</b><a>1</a></c>");
  auto applied = Apply(*v.old_root, v.result.delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE((*applied)->EqualsIgnoringXids(*v.new_root))
      << xml::Serialize(**applied);
}

TEST(ApplyTest, MoveCombinedWithEditsReconstructs) {
  auto v = DiffTexts(
      "<c><a>1</a><b>2</b><d>3</d><e>4</e></c>",
      "<c><e>4</e><b>2x</b><f>new</f><a>1</a></c>");
  auto applied = Apply(*v.old_root, v.result.delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE((*applied)->EqualsIgnoringXids(*v.new_root))
      << xml::Serialize(**applied);
}

TEST(DiffTest, MovedElementDoesNotAlertAsNew) {
  // End-to-end guard: a catalog reorder must not fire `new Product`.
  warehouse::Warehouse wh;
  wh.Ingest({"http://s/",
             "<c><Product id=\"1\"><name>tv</name></Product>"
             "<Product id=\"2\"><name>cam</name></Product></c>"},
            1);
  auto r = wh.Ingest({"http://s/",
                      "<c><Product id=\"2\"><name>cam</name></Product>"
                      "<Product id=\"1\"><name>tv</name></Product></c>"},
                     2);
  EXPECT_EQ(r.meta.status, warehouse::DocStatus::kUpdated);
  for (const auto& change : r.diff.changes) {
    EXPECT_NE(change.op, ChangeOp::kNew) << change.element->name();
    EXPECT_NE(change.op, ChangeOp::kDeleted) << change.element->name();
  }
}

// Property: Apply(old, Diff(old, new)) == new over random tree edits.
class DiffApplyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<Node> RandomTree(Rng* rng, int depth) {
  static const char* kTags[] = {"a", "b", "c", "item", "name"};
  auto node = Node::Element(kTags[rng->Uniform(5)]);
  if (rng->Bernoulli(0.3)) {
    node->SetAttribute("k", std::to_string(rng->Uniform(10)));
  }
  size_t children = depth > 0 ? rng->Uniform(4) : 0;
  for (size_t i = 0; i < children; ++i) {
    if (rng->Bernoulli(0.4)) {
      node->AddChild(Node::Text("t" + std::to_string(rng->Uniform(20))));
    } else {
      node->AddChild(RandomTree(rng, depth - 1));
    }
  }
  return node;
}

/// Applies 1-4 random edits (insert/delete/retext/reattr) to a clone.
std::unique_ptr<Node> Mutate(const Node& original, Rng* rng) {
  auto tree = original.Clone();
  std::vector<Node*> elements;
  std::vector<Node*> texts;
  std::function<void(Node*)> collect = [&](Node* n) {
    if (n->is_element()) elements.push_back(n);
    if (n->is_text()) texts.push_back(n);
    for (const auto& c : n->children()) collect(c.get());
  };
  collect(tree.get());

  size_t edits = 1 + rng->Uniform(4);
  for (size_t e = 0; e < edits; ++e) {
    switch (rng->Uniform(4)) {
      case 0: {  // Insert a small subtree under a random element.
        Node* parent = elements[rng->Uniform(elements.size())];
        parent->InsertChild(rng->Uniform(parent->child_count() + 1),
                            RandomTree(rng, 1));
        break;
      }
      case 1: {  // Delete a random non-root element.
        if (elements.size() > 1) {
          Node* victim = elements[1 + rng->Uniform(elements.size() - 1)];
          Node* parent = victim->parent();
          if (parent != nullptr) {
            parent->RemoveChild(parent->IndexOfChild(victim));
            // Recollect (pointers into the removed subtree are stale).
            elements.clear();
            texts.clear();
            collect(tree.get());
          }
        }
        break;
      }
      case 2: {  // Re-text a random text node.
        if (!texts.empty()) {
          texts[rng->Uniform(texts.size())]->set_text(
              "mut" + std::to_string(rng->Uniform(100)));
        }
        break;
      }
      case 3: {  // Change an attribute.
        Node* el = elements[rng->Uniform(elements.size())];
        el->SetAttribute("k", "new" + std::to_string(rng->Uniform(10)));
        break;
      }
    }
  }
  return tree;
}

TEST_P(DiffApplyPropertyTest, ApplyDiffReconstructs) {
  Rng rng(GetParam() * 7919 + 13);
  auto old_root = RandomTree(&rng, 4);
  XidAllocator alloc;
  alloc.AssignAll(old_root.get());

  auto new_root = Mutate(*old_root, &rng);
  // Fresh copy for diffing (Diff mutates xids of its new_root argument).
  auto expected = new_root->Clone();
  DiffResult result = Diff(*old_root, new_root.get(), &alloc);

  auto applied = Apply(*old_root, result.delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE((*applied)->EqualsIgnoringXids(*expected))
      << "old:      " << xml::Serialize(*old_root)
      << "\nexpected: " << xml::Serialize(*expected)
      << "\ngot:      " << xml::Serialize(**applied);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffApplyPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace xymon::xmldiff
